package core

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
)

// This file implements the blocked multi-trial stepping kernel: B
// independent trials of one (graph, initial-profile) experiment point
// execute in an interleaved loop over structure-of-arrays state — the
// trials' opinion rows live side by side in one int32 slab, all rows
// share the graph's hot adjacency/arc structures, and stop checks,
// engine-switch decisions, and metric flushes happen at chunk
// granularity instead of per step.
//
// Why it is faster than B sequential runs: a consensus trial spends
// almost all of its steps in tight draw→compare→update iterations whose
// working set is the opinion row plus the graph. Running trials back to
// back re-walks the same graph structures per trial with cold branch
// history in between; running them blocked keeps the shared read-only
// structures resident across rows and lets the per-row loops specialize
// (the complete-graph DIV kernel below spends one bounded draw and no
// adjacency traffic per step). The engine dispatch, probe plumbing, and
// stop-condition checks are hoisted out of the per-step path entirely.
//
// Why it is deterministic regardless of blocking: every trial draws
// from its own counter-based rng.Stream keyed by (Seed, trialIndex)
// (see internal/rng/stream.go), and rows share no mutable state — so a
// trial's trajectory is a pure function of its own indices. Running it
// alone, inside a block of any size, or on any worker of the
// work-stealing pool produces bit-identical Results, which is what the
// suite's byte-identity test pins (internal/exp).
//
// The process law is exactly the naive engine's: every scheduler
// invocation is realized individually from the trial's own stream, with
// the same pair distribution (on K_n the single joint draw below is the
// same uniform ordered pair the two-draw path realizes). Idle-draw
// skip-sampling still pays off in the long final stage, so a row whose
// windowed idle fraction crosses the hybrid engine's threshold retires
// from the block and finishes under the sequential fast/hybrid loop,
// borrowing the arena's shared FastState (one per process, rebound per
// hand-off) instead of allocating its own O(arcs) index.

// DefaultBlock is the number of trials a blocked batch keeps in flight
// when BlockConfig.Block is zero. Eight int32 rows of a few thousand
// vertices fit comfortably in L2 next to the shared graph structures;
// measured throughput is flat from 4 to 16, so the default just picks
// the middle of the plateau.
const DefaultBlock = 8

var (
	// blockTrialsTotal counts trials completed by the blocked kernel
	// (including rows that retired to the sequential engine mid-run).
	blockTrialsTotal = obs.Default.Counter("core_block_trials_total")
	// streamRefillsTotal counts per-trial counter-stream buffer refills,
	// flushed once per finished trial (64 words each; see rng.Stream).
	streamRefillsTotal = obs.Default.Counter("rng_stream_refills_total")
)

// BlockConfig describes a batch of independent trials of one
// experiment point, all on the same graph under the same process, rule,
// and stopping condition, differing only in their trial index. The
// trial index determines both the RNG stream (rng.NewStream(Seed, t))
// and the initial profile (Init is called with the trial's own stream-
// backed generator), so a trial's Result is a pure function of
// (configuration, Seed, t).
//
// Compared to Config, the blocked path does not support Observer or
// TraceSupport: those are per-step interfaces at odds with batched
// stepping, and the experiment harness that drives blocks uses neither.
// Probes are supported with chunk-granular batch events (Regime
// "block").
type BlockConfig struct {
	// Graph is the (connected, min-degree ≥ 1) interaction graph.
	Graph *graph.Graph
	// Topology, when non-nil, supplies the interaction structure instead
	// of Graph: either a materialized *graph.Graph or one of the
	// O(1)-state implicit families (graph.ImplicitTorus,
	// graph.HashedRegular, …), which never build adjacency and so make
	// n = 10⁶–10⁷ runs affordable. Implicit topologies support only the
	// DIV rule (the generic-rule path needs CSR structure). Under
	// EngineNaive, results are byte-identical to running on
	// Materialize(Topology); EngineFast and EngineAuto hand off to the
	// sparse endgame engine (core/sparse.go), which preserves the naive
	// law in distribution but not pointwise (except on complete
	// topologies, where the sparse engine degenerates and is rejected /
	// never entered). Setting both Graph and a Topology other than Graph
	// itself is an error.
	Topology graph.Topology
	// Compact stores each trial's opinions as a byte slab (opinion
	// window ≤ 256) instead of int32 — 4× less opinion memory, so a
	// block's working set fits L2 at n = 2²⁰. Requires the DIV rule;
	// under EngineNaive results are byte-identical to the int32
	// representation, and like implicit topologies, compact trials hand
	// off to the sparse endgame engine rather than the sequential fast
	// loop.
	Compact bool
	// Process is the scheduler (vertex or edge). Default VertexProcess.
	Process Process
	// Rule is the update rule. Default DIV{}. Non-pairwise rules run on
	// the generic scheduler path and never hand off to the fast engine.
	Rule Rule
	// Engine selects the stepping strategy, with the same semantics as
	// Config.Engine reinterpreted for blocked execution: EngineNaive
	// keeps every trial in the blocked loop to the end, EngineFast
	// retires every trial to the sequential fast loop immediately
	// (erroring if the run is ineligible), EngineAuto retires a trial
	// when its windowed idle fraction crosses the hybrid threshold.
	Engine Engine
	// Stop selects the halting condition. Default UntilConsensus.
	Stop StopCondition
	// MaxSteps caps each trial. 0 means 200·n².
	MaxSteps int64
	// MajorityFrac, when positive, makes each trial record
	// Result.MajorityStep: the first observed step at which some single
	// opinion's multiplicity reaches MajorityFrac·n. The check runs at
	// chunk granularity in the blocked loops and per active step in the
	// sparse endgame loop, so the recorded step is an upper bound within
	// one chunk of the true crossing — the resolution the bign phase
	// split needs, at zero hot-path cost.
	MajorityFrac float64
	// Seed is the experiment point's base seed; trial t draws from the
	// counter stream keyed by (Seed, t).
	Seed uint64
	// Init fills dst (length n) with trial t's initial opinions, using r
	// — the trial's own stream-backed generator — for any randomness.
	// Required.
	Init func(trial int, dst []int, r *rand.Rand) error
	// Probe, when non-nil, builds a per-trial probe exactly as the sim
	// harness does: Probe(t, rng.DeriveSeed(Seed, t)).
	Probe obs.ProbeMaker
	// ObserveEvery sets the probe's batch-event cadence (rounded up to
	// chunk boundaries). Default n.
	ObserveEvery int64
	// Scratch, when non-nil, supplies the reusable block arena (opinion
	// slab, row states, hand-off FastStates) so repeated batches on one
	// graph allocate nothing. Must be bound to Graph.
	Scratch *Scratch
	// Block is the number of trials stepped concurrently. 0 means
	// DefaultBlock. The value never affects results, only locality.
	Block int
}

// RunBlock executes trials [t0, t1) of the point described by cfg and
// stores trial t's Result in out[t-t0]. Trials are stepped in blocks of
// cfg.Block rows; as a row finishes, the next pending trial is admitted
// into its slot, so the tail of an uneven batch still runs blocked.
func RunBlock(cfg BlockConfig, t0, t1 int, out []Result) error {
	b, err := newBlockRun(cfg)
	if err != nil {
		return err
	}
	if t0 < 0 || t1 < t0 {
		return fmt.Errorf("core: RunBlock trial range [%d,%d)", t0, t1)
	}
	if len(out) < t1-t0 {
		return fmt.Errorf("core: RunBlock needs %d result slots, got %d", t1-t0, len(out))
	}
	bn := b.block
	if r := t1 - t0; r < bn {
		bn = r
	}
	if bn == 0 {
		return nil
	}
	b.arena.grow(bn, b.compact)
	rows := make([]*blockRow, bn)
	copy(rows, b.arena.rows[:bn])
	next := t0
	for i := range rows {
		if err := b.initRow(rows[i], next); err != nil {
			return err
		}
		next++
	}
	for len(rows) > 0 {
		// Resolve phase: retire rows that want the sequential engine,
		// finalize finished trials, and admit replacements, repeating on
		// each slot until it stabilizes (an admitted trial may be born
		// done, or want the fast engine immediately under EngineFast).
		for i := 0; i < len(rows); {
			row := rows[i]
			if row.wantFast && !row.done {
				if err := b.handoff(row); err != nil {
					return err
				}
			}
			if !row.done {
				i++
				continue
			}
			b.finalize(row, out, t0)
			if next < t1 {
				if err := b.initRow(row, next); err != nil {
					return err
				}
				next++
				continue // reprocess slot i with its new trial
			}
			rows[i] = rows[len(rows)-1]
			rows = rows[:len(rows)-1]
		}
		if len(rows) == 0 {
			break
		}
		// Advance phase: one chunk for every runnable row. CSR DIV rows
		// step lane-interleaved (laneChunk) so independent cache misses
		// overlap across trials; other kinds advance row by row.
		if b.lane {
			b.laneChunk(rows)
		} else {
			for _, row := range rows {
				b.advanceChunk(row)
			}
		}
	}
	return nil
}

// kernelKind selects the specialized per-chunk stepping loop.
type kernelKind int

const (
	kindGeneric  kernelKind = iota // any rule, via Scheduler.Pair + Rule.Step
	kindComplete                   // DIV on K_n: one joint bounded draw per step
	kindVertex                     // DIV, vertex process, CSR neighbour lookup
	kindEdge                       // DIV, edge process, uniform arc
)

// blockRow is one trial's slot in a block: its State (opinions aliased
// into the arena slab), its counter stream, and the bookkeeping the
// sequential engines keep in locals.
type blockRow struct {
	trial  int
	s      *State
	stream rng.Stream
	r      *rand.Rand // rand.New(&stream): generic path, Init, hand-off
	sched  *Scheduler // built lazily, generic kernel only
	probe  obs.Probe
	batch  obs.StepBatch
	res    Result

	nextEmit int64
	prevVer  uint64
	// Hybrid-trigger window accounting (EngineAuto): counters over the
	// row's own draws, plus the bounce-back cooldown in windows.
	windowDraws, windowActive int64
	cooldown, nextCooldown    int64

	// Unused upper half of the last stream word drawn by the 32-bit
	// kernels (chunkCompleteSmall and the CSR lane loops). Row-local so
	// the word↔draw alignment follows the trial, not the chunk schedule.
	spare     uint32
	haveSpare bool

	// One-step lookahead slot of the CSR lane loops: step t+1's
	// endpoints (and the tail's degree), pre-drawn — in stream order —
	// while step t retires, so the CSR and opinion loads they imply
	// start a full lane rotation before the pair is consumed (see
	// laneLoopVertex). Row-local like the spare, so the draw↔step
	// alignment is a pure function of the trial's own history.
	nextV, nextW int32
	nextDeg      int64
	haveNext     bool

	// Lane-loop accounting (CSR kernels): the chunk budget left for
	// this lane, steps accepted but not yet added to the State, the
	// deferred sum/degree-sum deltas, and the chunk's draw/active
	// tallies. All row-local, so interleaving lanes cannot couple
	// trials.
	laneRemaining int64
	lanePending   int64
	laneSum       int64
	laneDegSum    int64
	laneDrawn     int64
	laneActive    int64

	done     bool
	wantFast bool // retire to the sequential fast/hybrid loop
}

// blockArena owns the reusable storage of the blocked kernel for one
// graph: the SoA opinion slab, the per-slot rows (state + stream), the
// initial-profile buffer, and one hand-off FastState per process. Like
// Scratch, it is single-goroutine; Scratch.blockArenaFor caches one per
// worker.
type blockArena struct {
	g       *graph.Graph   // nil when topo is an implicit family
	topo    graph.Topology // the backing structure (== g when CSR)
	compact bool           // representation rows are currently aliased to
	slab    []int32
	slab8   []uint8
	rows    []*blockRow
	initBuf []int
	lanes   []*blockRow   // scratch live-lane list for laneChunk
	fast    [2]*FastState // indexed by Process; rebound per hand-off
	// sparse is the shared hand-off SparseState per process for
	// implicit/compact runs: O(n) position index + O(discordance) member
	// set, reseeded per hand-off, the sparse counterpart of fast.
	sparse [2]*SparseState
}

func newBlockArena(t graph.Topology) *blockArena {
	g, _ := t.(*graph.Graph)
	return &blockArena{g: g, topo: t}
}

// grow ensures the arena holds at least bn rows aliased into the slab
// of the requested representation (int32 or compact byte), re-aliasing
// on every call so representation switches between batches are safe.
// Row states are fully rebuilt by initRow, so re-aliasing need not
// preserve contents.
func (a *blockArena) grow(bn int, compact bool) {
	n := a.topo.N()
	for j := len(a.rows); j < bn; j++ {
		row := &blockRow{s: &State{g: a.g}}
		if a.g == nil {
			row.s.topo = a.topo
		}
		row.r = rand.New(&row.stream)
		a.rows = append(a.rows, row)
	}
	a.compact = compact
	if compact {
		if cap(a.slab8) < bn*n {
			a.slab8 = make([]uint8, bn*n)
		} else {
			a.slab8 = a.slab8[:bn*n]
		}
		for j := 0; j < bn; j++ {
			s := a.rows[j].s
			s.opb = a.slab8[j*n : (j+1)*n : (j+1)*n]
			s.opinions = nil
		}
		return
	}
	if cap(a.slab) < bn*n {
		a.slab = make([]int32, bn*n)
	} else {
		a.slab = a.slab[:bn*n]
	}
	for j := 0; j < bn; j++ {
		s := a.rows[j].s
		s.opinions = a.slab[j*n : (j+1)*n : (j+1)*n]
		s.opb = nil
	}
}

// fastFor returns the arena's shared hand-off FastState for proc,
// rebound to row's State and Reset against its current opinions. The
// arena keeps ONE per process — O(arcs) memory — and lends it to
// whichever row is retiring; the retiring trial finishes sequentially
// before any other row can need it.
func (a *blockArena) fastFor(row *blockRow, proc Process) (*FastState, error) {
	if f := a.fast[proc]; f != nil {
		f.rebind(row.s)
		f.Reset()
		return f, nil
	}
	f, err := NewFastState(row.s, proc)
	if err != nil {
		return nil, err
	}
	a.fast[proc] = f
	return f, nil
}

// sparseFor is fastFor's counterpart for implicit/compact runs: the
// arena's shared hand-off SparseState for proc, rebound to row's State
// and reseeded against its current opinions (the O(n·d) enumeration
// pass of the hand-off). One per process, lent to the retiring row.
func (a *blockArena) sparseFor(row *blockRow, proc Process) (*SparseState, error) {
	if sp := a.sparse[proc]; sp != nil {
		sp.rebind(row.s)
		sp.Seed()
		return sp, nil
	}
	sp, err := NewSparseState(row.s, proc)
	if err != nil {
		return nil, err
	}
	a.sparse[proc] = sp
	return sp, nil
}

// blockRun is the resolved, validated configuration plus the
// kernel-selection constants hoisted out of the stepping loops.
type blockRun struct {
	g *graph.Graph // nil when the run is backed by an implicit topology
	// topo is the structure backing the kernels (== g when CSR); atopo
	// its arc-map view, set only for the implicit edge kernel. tuned
	// marks the CSR + int32 combination, which keeps the hand-tuned lane
	// loops; every other combination (implicit topology and/or compact
	// byte slab) runs the topology-generic loops in block_topo.go, whose
	// draw structure is transcribed from the tuned loops so trajectories
	// stay byte-identical across backends and representations.
	topo    graph.Topology
	atopo   graph.ArcTopology
	compact bool
	tuned   bool
	proc    Process
	rule    Rule
	pw      PairwiseRule // nil when the rule is not pairwise
	isDIV   bool
	engine  Engine
	stop    StopCondition

	seed         uint64
	maxSteps     int64
	observeEvery int64
	init         func(trial int, dst []int, r *rand.Rand) error
	probeMaker   obs.ProbeMaker
	arena        *blockArena
	block        int

	kind  kernelKind
	n     int
	un    uint64 // n
	arcs  uint64 // degree sum (edge kernel modulus)
	m     uint64 // n(n-1), complete kernel modulus
	d     uint64 // n-1
	magic uint64 // ⌈2^40/d⌉ for the divide-free decomposition; 0 ⇒ q/d

	// CSR lane-kernel constants: lane is true when the vertex/edge DIV
	// kernels can run the inline 32-bit lane loops (n and arc count fit
	// a half word — always, in practice, since vertices are int32); off
	// and adj alias the graph's CSR arrays, tails the ArcIndex tails.
	lane  bool
	off   []int64
	adj   []int32
	tails []int32
	// laneSink absorbs the lane loops' lookahead touches of op[nextV]
	// and op[nextW]: accumulating the loaded values into a heap field
	// keeps the compiler from discarding the loads, which are the
	// software prefetch that hides the next step's opinion misses
	// behind the other lanes' work. Never read.
	laneSink int64

	// Hybrid hand-off thresholds (see hybrid.go's cost model) and the
	// batch-wide kill switch set when FastState (or SparseState)
	// construction fails. sparseOK marks runs whose hand-off target is
	// the sparse endgame engine instead of the sequential fast loop:
	// pairwise DIV on a non-complete backend that is implicit and/or
	// compact (the tuned CSR+int32 path keeps the fast engine so its
	// trajectories stay byte-identical to earlier releases).
	enterScale, exitScale int64
	handoffDisabled       bool
	sparseOK              bool
	// majorityCount is the opinion multiplicity at which MajorityFrac is
	// reached; 0 disables the check.
	majorityCount int64
}

func newBlockRun(cfg BlockConfig) (*blockRun, error) {
	g := cfg.Graph
	topo := cfg.Topology
	switch tg := topo.(type) {
	case nil:
		if g == nil {
			return nil, fmt.Errorf("core: BlockConfig.Graph or Topology is required")
		}
		topo = g
	case *graph.Graph:
		if g != nil && g != tg {
			return nil, fmt.Errorf("core: BlockConfig.Graph and Topology disagree")
		}
		g = tg
	default:
		if g != nil {
			return nil, fmt.Errorf("core: BlockConfig.Graph and Topology disagree")
		}
	}
	if cfg.Init == nil {
		return nil, fmt.Errorf("core: BlockConfig.Init is required")
	}
	if topo.MinDegree() == 0 {
		return nil, fmt.Errorf("core: %v process requires min degree >= 1", cfg.Process)
	}
	rule := cfg.Rule
	if rule == nil {
		rule = DIV{}
	}
	pw, _ := rule.(PairwiseRule)
	_, isDIV := rule.(DIV)
	if !isDIV {
		if g == nil {
			return nil, fmt.Errorf("core: implicit topology %q supports only the DIV rule (rule %q needs CSR structure)", topo.Name(), rule.Name())
		}
		if cfg.Compact {
			return nil, fmt.Errorf("core: compact opinion representation supports only the DIV rule, got %q", rule.Name())
		}
	}
	switch cfg.Engine {
	case EngineNaive, EngineAuto:
	case EngineFast:
		if pw == nil {
			return nil, fmt.Errorf("core: fast engine requires a PairwiseRule, got %q", rule.Name())
		}
		// Implicit/compact eligibility (the sparse endgame engine) is
		// kind-dependent and validated after kernel selection below.
	default:
		return nil, fmt.Errorf("core: unknown engine %d", int(cfg.Engine))
	}
	n := topo.N()
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 200 * int64(n) * int64(n)
	}
	observeEvery := cfg.ObserveEvery
	if observeEvery <= 0 {
		observeEvery = int64(n)
	}
	var arena *blockArena
	if cfg.Scratch != nil {
		var err error
		if arena, err = cfg.Scratch.blockArenaFor(topo); err != nil {
			return nil, err
		}
	} else {
		arena = newBlockArena(topo)
	}
	block := cfg.Block
	if block <= 0 {
		block = DefaultBlock
	}
	costUnits := hybridCostRatio * hybridCostUnits(topo)
	b := &blockRun{
		g: g, topo: topo, compact: cfg.Compact,
		proc: cfg.Process, rule: rule, pw: pw, isDIV: isDIV,
		engine: cfg.Engine, stop: cfg.Stop,
		seed: cfg.Seed, maxSteps: maxSteps, observeEvery: observeEvery,
		init: cfg.Init, probeMaker: cfg.Probe, arena: arena, block: block,
		n: n, un: uint64(n), arcs: uint64(topo.DegreeSum()),
		enterScale: 2 * costUnits, exitScale: costUnits,
	}
	if cfg.MajorityFrac > 0 {
		b.majorityCount = int64(cfg.MajorityFrac * float64(n))
		if b.majorityCount < 1 {
			b.majorityCount = 1
		}
	}
	b.tuned = g != nil && !cfg.Compact
	complete := false
	if g != nil {
		complete = g.IsComplete()
	} else if _, ok := topo.(*graph.ImplicitComplete); ok {
		complete = true
	}
	switch {
	case !isDIV:
		b.kind = kindGeneric
	case complete:
		b.kind = kindComplete
		b.m = uint64(n) * uint64(n-1)
		b.d = uint64(n - 1)
		// Divide-free decomposition of the joint draw q ∈ [0, n(n-1)):
		// with M = ⌊2^40/d⌋+1, (q·M)>>40 equals ⌊q/d⌋ exactly because
		// the rounding error q·(M - 2^40/d)/2^40 < q/2^40 < 2^-14 can
		// never bridge frac(q/d) ≤ 1-1/d to 1 while d < 2^13 ≤ 2^14.
		// The product stays under (d+1)·2^40 < 2^53. Above the gate the
		// kernel falls back to a hardware divide per step.
		if n <= 8192 {
			b.magic = (1<<40)/b.d + 1
		}
	case cfg.Process == VertexProcess:
		b.kind = kindVertex
	default:
		b.kind = kindEdge
	}
	if b.kind == kindVertex || b.kind == kindEdge {
		if g != nil {
			b.off = g.Offsets()
			b.adj = g.Arcs()
			if b.kind == kindEdge {
				b.tails = g.ArcTails()
			}
		} else if b.kind == kindEdge {
			at, ok := topo.(graph.ArcTopology)
			if !ok {
				return nil, fmt.Errorf("core: edge process on implicit topology %q requires an arc map (graph.ArcTopology)", topo.Name())
			}
			b.atopo = at
		}
		b.lane = b.un <= 1<<32-1 && (b.kind == kindVertex || b.arcs <= 1<<32-1)
		if !b.lane && !b.tuned {
			// The full-word fallback kernels are CSR + int32 only; the
			// generic lane loops cover every realistic size (n and arc
			// count below 2^32).
			return nil, fmt.Errorf("core: implicit/compact blocked runs require n and arc count < 2^32")
		}
	}
	// Hand-off targets. The tuned CSR+int32 path retires to the
	// sequential fast/hybrid loop exactly as before; every other
	// pairwise-DIV vertex/edge run retires to the sparse endgame engine
	// (distribution-equivalent, O(discordance) memory). Complete
	// topologies are excluded from sparse stepping: with d = n-1 the
	// member set is ~n and rejection sampling degenerates, and K_n's
	// extreme cost-model thresholds mean the window would essentially
	// never trigger anyway.
	b.sparseOK = pw != nil && !b.tuned && (b.kind == kindVertex || b.kind == kindEdge)
	b.handoffDisabled = pw == nil || (!b.tuned && !b.sparseOK)
	if cfg.Engine == EngineFast && b.handoffDisabled {
		return nil, fmt.Errorf("core: fast engine on %q requires a materialized CSR graph and int32 opinions, or a non-complete implicit/compact DIV run (sparse endgame engine)", topo.Name())
	}
	return b, nil
}

// initRow prepares row to run trial, reusing every allocation: the
// stream is reseeded to (Seed, trial), Init fills the arena's profile
// buffer from the trial's own stream, and the row State is ResetTo it
// (keeping its slab-aliased opinion row).
func (b *blockRun) initRow(row *blockRow, trial int) error {
	row.trial = trial
	row.stream.Seed(b.seed, uint64(trial))
	if b.arena.initBuf == nil {
		b.arena.initBuf = make([]int, b.n)
	}
	if err := b.init(trial, b.arena.initBuf, row.r); err != nil {
		return fmt.Errorf("core: block trial %d init: %w", trial, err)
	}
	if err := row.s.ResetTo(b.arena.initBuf); err != nil {
		return fmt.Errorf("core: block trial %d: %w", trial, err)
	}
	if b.kind == kindGeneric && row.sched == nil {
		sc, err := NewScheduler(row.s, b.proc)
		if err != nil {
			return err
		}
		row.sched = sc
	}
	s := row.s
	row.res = Result{
		ThreeStep:              -1,
		TwoAdjacentStep:        -1,
		MajorityStep:           -1,
		InitialAverage:         s.Average(),
		InitialWeightedAverage: s.WeightedAverage(),
		WeightAtTwoAdjacent:    nan(),
	}
	row.probe = nil
	if b.probeMaker != nil {
		row.probe = b.probeMaker(trial, rng.DeriveSeed(b.seed, uint64(trial)))
	}
	row.batch = obs.StepBatch{}
	row.nextEmit = b.observeEvery
	row.prevVer = s.SupportVersion()
	row.windowDraws, row.windowActive = 0, 0
	row.cooldown, row.nextCooldown = 0, 1
	row.spare, row.haveSpare = 0, false
	row.nextV, row.nextW, row.nextDeg, row.haveNext = 0, 0, 0, false
	row.laneRemaining, row.lanePending = 0, 0
	row.laneSum, row.laneDegSum = 0, 0
	row.laneDrawn, row.laneActive = 0, 0
	row.done, row.wantFast = false, false
	b.recordMilestones(row)
	b.checkMajority(row)
	switch {
	case stopMet(s, b.stop):
		row.done = true
	case b.engine == EngineFast:
		row.wantFast = true
	}
	return nil
}

// weightAverage mirrors Scheduler.WeightAverage without needing a
// Scheduler per row: the process-appropriate average opinion.
func (b *blockRun) weightAverage(s *State) float64 {
	if b.proc == EdgeProcess {
		return s.Average()
	}
	return s.WeightedAverage()
}

// checkMajority records the MajorityFrac crossing (see
// BlockConfig.MajorityFrac). Counts move only on active steps, so
// calling this at chunk boundaries and after sparse active steps
// observes every crossing within one check interval.
func (b *blockRun) checkMajority(row *blockRow) {
	if b.majorityCount == 0 || row.res.MajorityStep >= 0 {
		return
	}
	if row.s.LargestCount() >= b.majorityCount {
		row.res.MajorityStep = row.s.Steps()
	}
}

func (b *blockRun) recordMilestones(row *blockRow) {
	s := row.s
	if row.res.ThreeStep < 0 && s.Range() <= 2 {
		row.res.ThreeStep = s.Steps()
	}
	if row.res.TwoAdjacentStep < 0 && s.Range() <= 1 {
		row.res.TwoAdjacentStep = s.Steps()
		row.res.WeightAtTwoAdjacent = b.weightAverage(s)
	}
}

// supportEvent records milestones and emits the probe Stage event; the
// shared body of the blocked loops' support handling and the hand-off
// loopEnv.onSupport.
func (b *blockRun) supportEvent(row *blockRow) {
	b.recordMilestones(row)
	if row.probe != nil {
		s := row.s
		row.probe.Stage(obs.Stage{
			Step:        s.Steps(),
			Support:     s.SupportSize(),
			Min:         s.Min(),
			Max:         s.Max(),
			TwoAdjacent: s.Range() <= 1,
		})
	}
}

// afterSupport is the cold path of an active step that changed the
// support set: milestones, probe, stop re-evaluation. Returns done.
func (b *blockRun) afterSupport(row *blockRow) bool {
	row.prevVer = row.s.SupportVersion()
	b.supportEvent(row)
	if stopMet(row.s, b.stop) {
		row.done = true
	}
	return row.done
}

// flushRow emits the accumulated block-regime step batch, if any.
func (b *blockRun) flushRow(row *blockRow) {
	to := row.s.Steps()
	if row.probe == nil || to == row.batch.FromStep {
		return
	}
	row.batch.ToStep = to
	row.batch.Engine = obs.RegimeBlock
	row.probe.StepBatch(row.batch)
	row.batch = obs.StepBatch{FromStep: to}
}

// advanceChunk runs one chunk (hybridWindow draws, clipped at MaxSteps)
// of row's trial through the specialized per-row kernel, then the
// chunk-granular bookkeeping. The CSR DIV kinds normally go through
// laneChunk instead; they land here only above the 32-bit gates, where
// the full-word fallbacks apply.
func (b *blockRun) advanceChunk(row *blockRow) {
	switch b.kind {
	case kindComplete:
		b.chunkComplete(row)
	case kindVertex:
		b.chunkVertexBig(row)
	case kindEdge:
		b.chunkEdgeBig(row)
	default:
		b.chunkGeneric(row)
	}
	b.afterChunk(row)
}

// afterChunk is the chunk-granular bookkeeping shared by the per-row
// and lane-interleaved paths: MaxSteps termination, probe batch
// flushing on the ObserveEvery cadence, and the hybrid hand-off
// trigger. All decisions depend only on the row's own draws and state,
// which is what keeps results independent of block composition.
func (b *blockRun) afterChunk(row *blockRow) {
	s := row.s
	if !row.done && s.Steps() >= b.maxSteps {
		row.done = true
	}
	b.checkMajority(row)
	if row.probe != nil && s.Steps() >= row.nextEmit {
		b.flushRow(row)
		row.nextEmit = (s.Steps()/b.observeEvery + 1) * b.observeEvery
	}
	if row.done || row.wantFast {
		return
	}
	// Hybrid trigger, evaluated at chunk granularity: the same windowed
	// idle-fraction policy as hybridLoop (see its cost model), which is
	// a lawful stopping time here for the same reason — it is a
	// function of the row's own realized draws.
	if b.engine == EngineAuto && !b.handoffDisabled && row.windowDraws >= hybridWindow {
		switch {
		case row.cooldown > 0:
			row.cooldown--
		case row.windowActive*b.enterScale < row.windowDraws:
			row.wantFast = true
		}
		row.windowDraws, row.windowActive = 0, 0
	}
}

// chunkComplete is the K_n DIV kernel: one bounded draw per step over
// ordered pairs. On K_n the vertex and edge processes coincide — both
// schedule a uniform ordered pair (v, w), v ≠ w, the vertex path as
// 1/n · 1/(n-1) and the edge path as 1/(n(n-1)) — so a single joint
// draw q ∈ [0, n(n-1)) with v = ⌊q/(n-1)⌋, w = q mod (n-1) (+1 if
// ≥ v) realizes either process exactly.
//
// At the magic-divide gate (n ≤ 8192, so m = n(n-1) < 2^26) the kernel
// goes two steps further than the generic loops:
//
//   - Half-word draws: m < 2^32, so the Lemire bounded draw runs on 32
//     bits — q = hi32(x·m) of a 32-bit half of a stream word, accepted
//     when lo32(x·m) ≥ (2^32-m) mod m, exactly uniform by the same
//     argument as the 64-bit version. Each stream word feeds two steps,
//     halving the Philox refill cost per step. The spare half persists
//     in the row, so the word↔step alignment is a pure function of the
//     trial's own history.
//
//   - Inlined DIV update: the hot loop maintains only the opinion row
//     and the counts histogram, accumulating the S-sum delta in a
//     register. Everything else the State carries — degree masses,
//     degree-weighted sum, extremes, support — is degenerate on K_n
//     (uniform degree d makes degMass = d·counts and degSum = d·sum)
//     or can only change when a counts cell crosses zero, which the
//     loop detects directly (counts[to] == 1 or counts[from] == 0) and
//     routes to a cold flush that restores the full State invariants
//     before milestones and stop checks run.
//
// Above the gate the fallback loop uses full-word draws, a hardware
// divide, and the general SetOpinion path.
func (b *blockRun) chunkComplete(row *blockRow) {
	if b.compact {
		// Compact byte representation: the generic transcriptions in
		// block_topo.go, drawing and updating identically.
		if b.magic != 0 {
			chunkCompleteSmallG[uint8](b, row)
		} else {
			chunkCompleteBigG[uint8](b, row)
		}
		return
	}
	if b.magic != 0 {
		b.chunkCompleteSmall(row)
	} else {
		b.chunkCompleteBig(row)
	}
}

func (b *blockRun) chunkCompleteSmall(row *blockRow) {
	s := row.s
	st := &row.stream
	op := s.opinions
	counts := s.counts
	base := s.base
	m := uint32(b.m)
	d, magic := b.d, b.magic
	thresh := -m % m // (2^32 - m) mod m
	probe := row.probe != nil
	limit := hybridWindow
	if rem := b.maxSteps - s.Steps(); rem < limit {
		limit = rem
	}
	spare, haveSpare := row.spare, row.haveSpare
	var drawn, committed, active, sumDelta int64
	for drawn < limit {
		var x uint32
		if haveSpare {
			x, haveSpare = spare, false
		} else {
			word := st.Uint64()
			x, spare, haveSpare = uint32(word), uint32(word>>32), true
		}
		prod := uint64(x) * uint64(m)
		if uint32(prod) < thresh {
			continue // rejected half-word: biased residue, redraw
		}
		q := uint64(prod >> 32)
		drawn++
		v := q * magic >> 40
		w := q - v*d
		if w >= v {
			w++
		}
		xv := op[v]
		xw := op[w]
		if xv == xw {
			if probe {
				row.batch.Idle++
			}
			continue
		}
		active++
		var nw int32
		if xv < xw {
			nw = xv + 1
			sumDelta++
		} else {
			nw = xv - 1
			sumDelta--
		}
		op[v] = nw
		i := nw - base
		j := xv - base
		counts[i]++
		counts[j]--
		if probe {
			row.batch.Active++
		}
		if counts[i] == 1 || counts[j] == 0 {
			// Support changed: restore full State invariants, then run
			// the shared milestone/probe/stop path.
			s.addSteps(drawn - committed)
			committed = drawn
			b.syncCompleteState(s, sumDelta)
			sumDelta = 0
			s.supVer++
			if b.afterSupport(row) {
				break
			}
		}
	}
	s.addSteps(drawn - committed)
	b.syncCompleteState(s, sumDelta)
	row.spare, row.haveSpare = spare, haveSpare
	row.windowDraws += drawn
	row.windowActive += active
}

// syncCompleteState restores the State aggregates the small-K_n loop
// leaves stale: the sums (from the accumulated delta; degrees are
// uniformly d on K_n, so degSum = d·sum moves in lockstep) and the
// counts-derived degree masses, support size, and extreme pointers.
func (b *blockRun) syncCompleteState(s *State, sumDelta int64) {
	d := int64(b.d)
	s.sum += sumDelta
	s.degSum += d * sumDelta
	support := 0
	minIdx, maxIdx := -1, 0
	for i, c := range s.counts {
		s.degMass[i] = d * c
		if c > 0 {
			support++
			if minIdx < 0 {
				minIdx = i
			}
			maxIdx = i
		}
	}
	s.support = support
	s.minIdx, s.maxIdx = minIdx, maxIdx
}

func (b *blockRun) chunkCompleteBig(row *blockRow) {
	s := row.s
	st := &row.stream
	op := s.opinions
	m, d := b.m, b.d
	probe := row.probe != nil
	limit := hybridWindow
	if rem := b.maxSteps - s.Steps(); rem < limit {
		limit = rem
	}
	var pending int64
	for i := int64(0); i < limit; i++ {
		x := st.Uint64()
		hi, lo := bits.Mul64(x, m)
		if lo < m {
			hi = st.Uint64nSlow(hi, lo, m)
		}
		v := hi / d
		w := hi - v*d
		if w >= v {
			w++
		}
		pending++
		xv := op[v]
		if xv == op[w] {
			if probe {
				row.batch.Idle++
			}
			continue
		}
		row.windowActive++
		s.addSteps(pending)
		pending = 0
		if probe {
			row.batch.Active++
		}
		if xv < op[w] {
			s.SetOpinion(int(v), int(xv)+1)
		} else {
			s.SetOpinion(int(v), int(xv)-1)
		}
		if s.SupportVersion() != row.prevVer && b.afterSupport(row) {
			row.windowDraws += i + 1
			return
		}
	}
	s.addSteps(pending)
	row.windowDraws += limit
}

// chunkVertexBig is the fallback CSR DIV kernel for the vertex process
// when the 32-bit lane gate fails: v uniform over vertices, then a
// uniform neighbour via the graph's CSR arrays, full-word draws and
// the general SetOpinion path. In practice unreachable (vertex ids are
// int32), kept as the reference implementation of the lane loop's
// semantics.
func (b *blockRun) chunkVertexBig(row *blockRow) {
	s := row.s
	st := &row.stream
	g := b.g
	op := s.opinions
	un := b.un
	probe := row.probe != nil
	limit := hybridWindow
	if rem := b.maxSteps - s.Steps(); rem < limit {
		limit = rem
	}
	var pending int64
	for i := int64(0); i < limit; i++ {
		x := st.Uint64()
		hi, lo := bits.Mul64(x, un)
		if lo < un {
			hi = st.Uint64nSlow(hi, lo, un)
		}
		v := int(hi)
		deg := uint64(g.Degree(v))
		x = st.Uint64()
		hi, lo = bits.Mul64(x, deg)
		if lo < deg {
			hi = st.Uint64nSlow(hi, lo, deg)
		}
		w := g.Neighbor(v, int(hi))
		pending++
		xv := op[v]
		if xv == op[w] {
			if probe {
				row.batch.Idle++
			}
			continue
		}
		row.windowActive++
		s.addSteps(pending)
		pending = 0
		if probe {
			row.batch.Active++
		}
		if xv < op[w] {
			s.SetOpinion(v, int(xv)+1)
		} else {
			s.SetOpinion(v, int(xv)-1)
		}
		if s.SupportVersion() != row.prevVer && b.afterSupport(row) {
			row.windowDraws += i + 1
			return
		}
	}
	s.addSteps(pending)
	row.windowDraws += limit
}

// chunkEdgeBig is the fallback DIV kernel for the edge process when
// the arc count exceeds the 32-bit lane gate (degree sum ≥ 2^32): one
// full-word bounded draw over directed arcs, endpoints from the shared
// tails/heads arrays, general SetOpinion path.
func (b *blockRun) chunkEdgeBig(row *blockRow) {
	s := row.s
	st := &row.stream
	tails, heads := b.g.ArcTails(), b.g.Arcs()
	op := s.opinions
	arcs := b.arcs
	probe := row.probe != nil
	limit := hybridWindow
	if rem := b.maxSteps - s.Steps(); rem < limit {
		limit = rem
	}
	var pending int64
	for i := int64(0); i < limit; i++ {
		x := st.Uint64()
		hi, lo := bits.Mul64(x, arcs)
		if lo < arcs {
			hi = st.Uint64nSlow(hi, lo, arcs)
		}
		v, w := tails[hi], heads[hi]
		pending++
		xv := op[v]
		if xv == op[w] {
			if probe {
				row.batch.Idle++
			}
			continue
		}
		row.windowActive++
		s.addSteps(pending)
		pending = 0
		if probe {
			row.batch.Active++
		}
		if xv < op[w] {
			s.SetOpinion(int(v), int(xv)+1)
		} else {
			s.SetOpinion(int(v), int(xv)-1)
		}
		if s.SupportVersion() != row.prevVer && b.afterSupport(row) {
			row.windowDraws += i + 1
			return
		}
	}
	s.addSteps(pending)
	row.windowDraws += limit
}

// laneChunk advances every runnable row by one chunk with the rows
// interleaved step by step — the CSR analogue of advanceChunk. Each
// row ("lane") gets the same budget it would get alone (hybridWindow
// accepted draws, clipped at MaxSteps) and draws only from its own
// stream, so the interleave order is unobservable in the results: a
// trial's trajectory is identical whether it runs with 0 or 7
// neighbours. What interleaving buys is memory-level parallelism — on
// graphs whose opinion rows outgrow the close caches, the random
// op[v] access of one lane misses while the other lanes' independent
// work keeps the core busy, instead of every miss serializing behind
// the previous step's data-dependent branch.
func (b *blockRun) laneChunk(rows []*blockRow) {
	live := b.arena.lanes[:0]
	for _, row := range rows {
		limit := hybridWindow
		if rem := b.maxSteps - row.s.Steps(); rem < limit {
			limit = rem
		}
		row.laneRemaining = limit
		row.lanePending, row.laneSum, row.laneDegSum = 0, 0, 0
		row.laneDrawn, row.laneActive = 0, 0
		if limit > 0 {
			live = append(live, row)
		}
	}
	switch {
	case b.kind == kindVertex && b.tuned:
		live = b.laneLoopVertex(live)
	case b.kind == kindVertex && b.compact:
		live = laneLoopTopoVertex[uint8](b, live)
	case b.kind == kindVertex:
		live = laneLoopTopoVertex[int32](b, live)
	case b.tuned:
		live = b.laneLoopEdge(live)
	case b.compact:
		live = laneLoopTopoEdge[uint8](b, live)
	default:
		live = laneLoopTopoEdge[int32](b, live)
	}
	b.arena.lanes = live[:0]
	for _, row := range rows {
		b.afterChunk(row)
	}
}

// laneCommit applies the row's deferred step count and sum deltas to
// its State. Idempotent between accumulations.
func (b *blockRun) laneCommit(row *blockRow) {
	s := row.s
	if row.lanePending != 0 {
		s.addSteps(row.lanePending)
		row.lanePending = 0
	}
	if row.laneSum != 0 || row.laneDegSum != 0 {
		s.sum += row.laneSum
		s.degSum += row.laneDegSum
		row.laneSum, row.laneDegSum = 0, 0
	}
}

// laneRetire folds the row's chunk tallies into the hybrid-trigger
// window when the lane leaves the live set (budget exhausted or done).
func (b *blockRun) laneRetire(row *blockRow) {
	b.laneCommit(row)
	row.windowDraws += row.laneDrawn
	row.windowActive += row.laneActive
	row.laneDrawn, row.laneActive = 0, 0
}

// syncCSRSupport recomputes support size and the extreme pointers from
// the counts histogram after the lane loops detect a cell crossing
// zero. Unlike the K_n sync, only the support aggregates need
// restoring: the lane loops maintain counts and degMass inline and
// commit the sum deltas before calling here. Values outside the old
// [minIdx, maxIdx] window are impossible (DIV moves opinions strictly
// inward), so the rescan is bounded by the current range.
func syncCSRSupport(s *State) {
	support := 0
	minIdx, maxIdx := -1, 0
	for i := s.minIdx; i <= s.maxIdx; i++ {
		if s.counts[i] > 0 {
			support++
			if minIdx < 0 {
				minIdx = i
			}
			maxIdx = i
		}
	}
	s.support = support
	s.minIdx, s.maxIdx = minIdx, maxIdx
}

// drawLaneVertex draws the next vertex-process pair from row's own
// stream — v by half-word Lemire over the fixed bound n, then a
// neighbour index over [0, deg(v)), whose varying bound gets its exact
// rejection threshold computed only in the ambiguous band — and
// stashes (v, w, deg(v)) in the row's lookahead slot. Called one lane
// visit before the pair is consumed, so the CSR offset and adjacency
// loads it performs (plus the caller's touch of both opinion cells)
// are the software prefetch of the NEXT step: by consumption time the
// loads have had a full lane rotation to complete behind the other
// lanes' work.
func (b *blockRun) drawLaneVertex(row *blockRow) {
	st := &row.stream
	n32 := uint32(b.un)
	threshN := -n32 % n32 // (2^32 - n) mod n
	var v uint32
	for {
		var x uint32
		if row.haveSpare {
			x, row.haveSpare = row.spare, false
		} else {
			word := st.Uint64()
			x, row.spare, row.haveSpare = uint32(word), uint32(word>>32), true
		}
		prod := uint64(x) * uint64(n32)
		if uint32(prod) >= threshN {
			v = uint32(prod >> 32)
			break
		}
	}
	o := b.off[v]
	d32 := uint32(b.off[v+1] - o)
	var ni uint32
	for {
		var x uint32
		if row.haveSpare {
			x, row.haveSpare = row.spare, false
		} else {
			word := st.Uint64()
			x, row.spare, row.haveSpare = uint32(word), uint32(word>>32), true
		}
		prod := uint64(x) * uint64(d32)
		lo := uint32(prod)
		if lo >= d32 || lo >= -d32%d32 {
			ni = uint32(prod >> 32)
			break
		}
	}
	row.nextV = int32(v)
	row.nextW = b.adj[o+int64(ni)]
	row.nextDeg = int64(d32)
}

// drawLaneEdge is drawLaneVertex's edge-process counterpart: one
// half-word Lemire draw over the fixed arc count selects a directed
// arc, endpoints come from the shared tails/heads arrays, and the
// tail's degree (needed by the degree-mass update) is read from the
// CSR offsets at pre-draw time, which doubles as its prefetch.
func (b *blockRun) drawLaneEdge(row *blockRow) {
	st := &row.stream
	a32 := uint32(b.arcs)
	threshA := -a32 % a32 // (2^32 - arcs) mod arcs
	var ai uint32
	for {
		var x uint32
		if row.haveSpare {
			x, row.haveSpare = row.spare, false
		} else {
			word := st.Uint64()
			x, row.spare, row.haveSpare = uint32(word), uint32(word>>32), true
		}
		prod := uint64(x) * uint64(a32)
		if uint32(prod) >= threshA {
			ai = uint32(prod >> 32)
			break
		}
	}
	v := b.tails[ai]
	row.nextV = v
	row.nextW = b.adj[ai]
	row.nextDeg = b.off[v+1] - b.off[v]
}

// laneLoopVertex is the interleaved CSR DIV kernel for the vertex
// process, stepped with one-step lookahead: each visit consumes the
// pair stashed by the PREVIOUS visit's drawLaneVertex, immediately
// pre-draws the pair after it, and touches the pre-drawn opinion
// cells, so every lane keeps its next random-access misses in flight
// while the other lanes execute. The draws still leave the stream in
// exactly the order the non-lookahead kernel consumed them — pair t is
// the t-th pair drawn either way — so trajectories are unchanged, and
// the stash lives in the row, so the alignment survives chunk and span
// boundaries at any block size. The inlined DIV update maintains
// opinions, counts, and degree masses directly, accumulates the sum
// deltas in row-local registers, and routes counts-cell zero-crossings
// to the cold commit/sync/milestone path, exactly the K_n small
// kernel's structure generalized to CSR adjacency. Removing a finished
// lane swaps from the end; service order among lanes is unobservable
// (streams are per-trial), so no rotation bookkeeping is needed beyond
// the round-robin index.
func (b *blockRun) laneLoopVertex(live []*blockRow) []*blockRow {
	var touch int32
	for li := 0; len(live) > 0; {
		if li >= len(live) {
			li = 0
		}
		row := live[li]
		s := row.s
		op := s.opinions
		if !row.haveNext {
			// Trial's first lane visit: fill the lookahead slot so the
			// steady state below always consumes a pair drawn one full
			// lane rotation earlier.
			b.drawLaneVertex(row)
			row.haveNext = true
		}
		v, w, dv := row.nextV, row.nextW, row.nextDeg
		b.drawLaneVertex(row)
		touch += op[row.nextV] ^ op[row.nextW]
		row.laneDrawn++
		row.lanePending++
		xv := op[v]
		xw := op[w]
		if xv != xw {
			row.laneActive++
			if row.probe != nil {
				row.batch.Active++
			}
			var nw int32
			var ds int64
			if xv < xw {
				nw, ds = xv+1, 1
			} else {
				nw, ds = xv-1, -1
			}
			op[v] = nw
			i := nw - s.base
			j := xv - s.base
			s.counts[i]++
			s.counts[j]--
			s.degMass[i] += dv
			s.degMass[j] -= dv
			row.laneSum += ds
			row.laneDegSum += ds * dv
			if s.counts[i] == 1 || s.counts[j] == 0 {
				b.laneCommit(row)
				syncCSRSupport(s)
				s.supVer++
				if b.afterSupport(row) {
					b.laneRetire(row)
					live[li] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
			}
		} else if row.probe != nil {
			row.batch.Idle++
		}
		row.laneRemaining--
		if row.laneRemaining == 0 {
			b.laneRetire(row)
			live[li] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		li++
	}
	b.laneSink += int64(touch)
	return live
}

// laneLoopEdge is the interleaved CSR DIV kernel for the edge process,
// with the same one-step lookahead as laneLoopVertex: consume the
// stashed arc, pre-draw the next one (drawLaneEdge), touch its
// endpoints. The update path is laneLoopVertex's, with the tail degree
// carried in the stash.
func (b *blockRun) laneLoopEdge(live []*blockRow) []*blockRow {
	var touch int32
	for li := 0; len(live) > 0; {
		if li >= len(live) {
			li = 0
		}
		row := live[li]
		s := row.s
		op := s.opinions
		if !row.haveNext {
			b.drawLaneEdge(row)
			row.haveNext = true
		}
		v, w, dv := row.nextV, row.nextW, row.nextDeg
		b.drawLaneEdge(row)
		touch += op[row.nextV] ^ op[row.nextW]
		row.laneDrawn++
		row.lanePending++
		xv := op[v]
		xw := op[w]
		if xv != xw {
			row.laneActive++
			if row.probe != nil {
				row.batch.Active++
			}
			var nw int32
			var ds int64
			if xv < xw {
				nw, ds = xv+1, 1
			} else {
				nw, ds = xv-1, -1
			}
			op[v] = nw
			i := nw - s.base
			j := xv - s.base
			s.counts[i]++
			s.counts[j]--
			s.degMass[i] += dv
			s.degMass[j] -= dv
			row.laneSum += ds
			row.laneDegSum += ds * dv
			if s.counts[i] == 1 || s.counts[j] == 0 {
				b.laneCommit(row)
				syncCSRSupport(s)
				s.supVer++
				if b.afterSupport(row) {
					b.laneRetire(row)
					live[li] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
			}
		} else if row.probe != nil {
			row.batch.Idle++
		}
		row.laneRemaining--
		if row.laneRemaining == 0 {
			b.laneRetire(row)
			live[li] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		li++
	}
	b.laneSink += int64(touch)
	return live
}

// chunkGeneric is the fallback for non-DIV rules: scheduler and rule
// dispatched dynamically, steps committed eagerly (a rule may consume
// randomness, so there is no lazy batching to reorder around).
func (b *blockRun) chunkGeneric(row *blockRow) {
	s := row.s
	probe := row.probe != nil
	limit := hybridWindow
	if rem := b.maxSteps - s.Steps(); rem < limit {
		limit = rem
	}
	for i := int64(0); i < limit; i++ {
		v, w := row.sched.Pair(row.r)
		s.countStep()
		if probe {
			if s.opinions[v] != s.opinions[w] {
				row.batch.Active++
			} else {
				row.batch.Idle++
			}
		}
		if s.opinions[v] != s.opinions[w] {
			row.windowActive++
		}
		b.rule.Step(s, row.r, v, w)
		if s.SupportVersion() != row.prevVer && b.afterSupport(row) {
			row.windowDraws += i + 1
			return
		}
	}
	row.windowDraws += limit
}

// handoff retires row from the blocked loop to the sequential engine —
// the fast/hybrid loop on the tuned CSR+int32 path, the sparse endgame
// engine everywhere else. For EngineAuto the hand-off state's exact
// mass double-checks the noisy windowed trigger first (as hybridLoop
// does): if discordance is still above the exit threshold the row
// bounces back to blocked stepping with an exponentially growing
// cooldown. A FastState/SparseState construction failure (degree-lcm
// overflow) is fatal under EngineFast and disables hand-off for the
// whole batch under EngineAuto — it is a property of (graph, process),
// not of the trial.
func (b *blockRun) handoff(row *blockRow) error {
	if b.sparseOK {
		return b.handoffSparse(row)
	}
	row.wantFast = false
	f, err := b.arena.fastFor(row, b.proc)
	if err != nil {
		if b.engine == EngineFast {
			return fmt.Errorf("core: block trial %d: %w", row.trial, err)
		}
		b.handoffDisabled = true
		return nil
	}
	if b.engine == EngineAuto && f.num*b.exitScale > f.den {
		row.cooldown = row.nextCooldown
		if row.nextCooldown < hybridMaxCooldown {
			row.nextCooldown *= 2
		}
		return nil
	}
	b.retire(row, f)
	row.done = true
	return nil
}

// handoffSparse is handoff's implicit/compact branch: seed the arena's
// shared sparse set with one O(n·d) enumeration pass and finish the
// trial under sparse skip-sampling. Under EngineAuto the exact mass
// vetoes noisy triggers (bounce + cooldown, as the fast branch does),
// and a mid-flight rebound returns the row to blocked stepping instead
// of finishing sequentially — the blocked loop IS the naive regime
// here, so the row resumes it rather than a per-row naive loop.
func (b *blockRun) handoffSparse(row *blockRow) error {
	row.wantFast = false
	sp, err := b.arena.sparseFor(row, b.proc)
	if err != nil {
		if b.engine == EngineFast {
			return fmt.Errorf("core: block trial %d: %w", row.trial, err)
		}
		b.handoffDisabled = true
		return nil
	}
	if b.engine == EngineAuto && sp.num*b.exitScale > sp.den {
		row.cooldown = row.nextCooldown
		if row.nextCooldown < hybridMaxCooldown {
			row.nextCooldown *= 2
		}
		return nil
	}
	sparseHandoffsTotal.Inc()
	b.flushRow(row)
	s := row.s
	if row.probe != nil {
		row.probe.EngineSwitch(obs.EngineSwitch{
			Step:    s.Steps(),
			From:    obs.RegimeBlock,
			To:      obs.RegimeSparse,
			Reason:  obs.SwitchWindow,
			MassNum: sp.num,
			MassDen: sp.den,
		})
	}
	row.batch = obs.StepBatch{FromStep: s.Steps()}
	if b.retireSparse(row, sp, b.engine == EngineAuto) {
		// Discordance rebounded past the exit threshold: back to blocked
		// stepping with the same exponential cooldown as hybridLoop.
		row.cooldown = row.nextCooldown
		if row.nextCooldown < hybridMaxCooldown {
			row.nextCooldown *= 2
		}
		row.windowDraws, row.windowActive = 0, 0
		if row.probe != nil {
			num, den := sp.ActiveMass()
			row.probe.EngineSwitch(obs.EngineSwitch{
				Step:     s.Steps(),
				From:     obs.RegimeSparse,
				To:       obs.RegimeBlock,
				Reason:   obs.SwitchRebound,
				MassNum:  num,
				MassDen:  den,
				Cooldown: row.cooldown,
			})
		}
		return nil
	}
	row.done = true
	return nil
}

// retire finishes row's trial under the sequential engine — the fast
// loop for EngineFast, the hybrid loop (seeded with the arena FastState
// via fastPre) for EngineAuto. The trial keeps drawing from its own
// stream through row.r, so the hand-off point being chunk-aligned does
// not couple trials. The sequential loops run the trial to completion
// before returning, which is what lets the block share one FastState.
func (b *blockRun) retire(row *blockRow, f *FastState) {
	sched, err := NewScheduler(row.s, b.proc)
	if err != nil {
		// Unreachable: min degree was validated at construction.
		panic(err)
	}
	b.flushRow(row)
	s := row.s
	env := &loopEnv{
		s:            s,
		sched:        sched,
		rule:         b.rule,
		r:            row.r,
		maxSteps:     b.maxSteps,
		observeEvery: b.observeEvery,
		probe:        row.probe,
		batch:        obs.StepBatch{FromStep: s.Steps()},
		nextEmit:     (s.Steps()/b.observeEvery + 1) * b.observeEvery,
		res:          &row.res,
		done:         func() bool { return stopMet(s, b.stop) },
		onSupport:    func() { b.supportEvent(row) },
	}
	if b.engine == EngineFast {
		f.loop(env, b.pw)
	} else {
		env.fastPre = f
		env.hybridLoop(b.pw, b.proc)
	}
	// The arena FastState moves on to the next retiring row; drop its
	// discordance hook from this row's state and realign the (already
	// flushed) block batch so finalize doesn't re-emit the fast span.
	f.detachDiscordance()
	row.batch = obs.StepBatch{FromStep: s.Steps()}
}

// finalize completes row's Result, emits the probe Done event, stores
// the Result, and flushes the per-trial counters.
func (b *blockRun) finalize(row *blockRow, out []Result, t0 int) {
	s := row.s
	b.checkMajority(row)
	row.res.Steps = s.Steps()
	row.res.FinalMin, row.res.FinalMax = s.Min(), s.Max()
	if w, ok := s.Consensus(); ok {
		row.res.Winner = w
		row.res.Consensus = true
	}
	b.flushRow(row)
	if row.probe != nil {
		row.probe.Done(obs.Done{
			Step:      row.res.Steps,
			Winner:    row.res.Winner,
			Consensus: row.res.Consensus,
		})
	}
	out[row.trial-t0] = row.res
	blockTrialsTotal.Inc()
	streamRefillsTotal.Add(row.stream.TakeRefills())
}

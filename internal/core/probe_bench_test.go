package core_test

import (
	"testing"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
)

// BenchmarkAutoPerStepDissenter measures the per-step wall-clock cost of
// a full EngineAuto consensus run on the E20 dissenter profile
// (RR(10000,8), two-opinion split with n/500 dissenters, vertex
// process). This is the acceptance benchmark for the observability
// layer: with Config.Probe == nil the cost must stay within 2% of the
// pre-probe baseline. The reported metric is ns/step (per-trial
// elapsed over realized steps), the same normalization E20 gates on.
func BenchmarkAutoPerStepDissenter(b *testing.B) {
	const n, d = 10000, 8
	g, err := graph.RandomRegular(n, d, rng.New(rng.DeriveSeed(1, 0x2000)))
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := rng.DeriveSeed(1, 0x20f0+uint64(i))
		b.StopTimer()
		init, err := core.TwoOpinionSplit(n, n/500, rng.New(seed))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := core.Run(core.Config{
			Graph:   g,
			Initial: init,
			Process: core.VertexProcess,
			Engine:  core.EngineAuto,
			Seed:    rng.SplitMix64(seed),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consensus {
			b.Fatal("no consensus")
		}
		steps += res.Steps
	}
	b.StopTimer()
	if steps > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(steps), "ns/step")
	}
}

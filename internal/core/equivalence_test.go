package core

// Distribution-equivalence suite: the fast engine is only safe to ship
// if it is *distribution-identical* to the naive reference engine, so
// this file tests statistical indistinguishability of the two engines'
// winner laws and stopping-time laws over four graph families (path,
// cycle, K_n, random regular) × both schedulers (vertex, edge), plus
// the closed-form winner law of Lemma 5 as an absolute anchor for each
// engine separately.
//
// Determinism and thresholds: every test draws from fixed seeds, so the
// sampled statistics — and hence the verdicts — are bit-reproducible;
// there is no flake channel. The thresholds are classical α = 0.001
// critical values (chi-square upper quantiles per degree of freedom;
// the two-sample Kolmogorov–Smirnov bound c(α)·√((m+n)/(m·n)) with
// c(0.001) = √(ln(2/α)/2) ≈ 1.9495; |z| ≤ 4.5 for the binomial anchor,
// two-sided α ≈ 7·10⁻⁶). All were verified to pass with wide margin for
// the committed seeds; a change that shifts either engine's law is
// expected to trip them.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
	"div/internal/stats"
)

// chi2Crit001[df] is the α = 0.001 upper critical value of the
// chi-square distribution with df degrees of freedom.
var chi2Crit001 = map[int]float64{
	1: 10.828, 2: 13.816, 3: 16.266, 4: 18.467,
	5: 20.515, 6: 22.458, 7: 24.322, 8: 26.124,
}

const ks2Crit001 = 1.9495 // √(ln(2/0.001)/2)

func eqTrials(t *testing.T) int {
	if testing.Short() {
		return 200
	}
	return 500
}

type eqSample struct {
	winners []int
	steps   []float64
	twoAdj  []float64
}

// gatherEq runs `trials` independent k=3 runs of one engine and
// collects the winner and the stopping times. With a non-nil sc every
// trial reuses the same per-worker Scratch, exactly as the sim harness
// does — the reused-scratch arms sample through that pipeline.
func gatherEq(t *testing.T, g *graph.Graph, proc Process, engine Engine, baseSeed uint64, trials int, sc *Scratch) eqSample {
	t.Helper()
	n := g.N()
	counts := []int{n / 3, n / 3, n - 2*(n/3)}
	var smp eqSample
	for trial := 0; trial < trials; trial++ {
		seed := rng.DeriveSeed(baseSeed, uint64(trial))
		var init []int
		var err error
		if sc != nil {
			init, err = BlockOpinionsInto(sc.Initial(), counts, sc.Rand(seed))
		} else {
			init, err = BlockOpinions(n, counts, rng.New(seed))
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Graph:    g,
			Initial:  init,
			Process:  proc,
			Engine:   engine,
			Seed:     rng.SplitMix64(seed),
			MaxSteps: 4 << 20,
			Scratch:  sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus {
			t.Fatalf("%v/%v engine %v trial %d: no consensus after %d steps", g, proc, engine, trial, res.Steps)
		}
		smp.winners = append(smp.winners, res.Winner)
		smp.steps = append(smp.steps, float64(res.Steps))
		smp.twoAdj = append(smp.twoAdj, float64(res.TwoAdjacentStep))
	}
	return smp
}

// chi2TwoSample computes the two-sample chi-square statistic over the
// winner categories of a and b, pooling sparse categories (pooled count
// < 10) into their neighbour so the asymptotic distribution applies.
func chi2TwoSample(a, b []int) (stat float64, df int) {
	count := map[int][2]float64{}
	for _, w := range a {
		c := count[w]
		c[0]++
		count[w] = c
	}
	for _, w := range b {
		c := count[w]
		c[1]++
		count[w] = c
	}
	cats := make([]int, 0, len(count))
	for w := range count {
		cats = append(cats, w)
	}
	sort.Ints(cats)
	var cells [][2]float64
	for _, w := range cats {
		cells = append(cells, count[w])
	}
	// Merge any sparse cell into its neighbour until none remain (or a
	// single cell is left). Categories are adjacent opinion values, so
	// neighbouring cells are the natural pooling partners.
	for len(cells) > 1 {
		idx := -1
		for i, c := range cells {
			if sumPair(c) < 10 {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		j := idx - 1
		if j < 0 {
			j = idx + 1
		}
		cells[j][0] += cells[idx][0]
		cells[j][1] += cells[idx][1]
		cells = append(cells[:idx], cells[idx+1:]...)
	}
	if len(cells) < 2 {
		return 0, 0 // a single category: trivially identical
	}
	na, nb := float64(len(a)), float64(len(b))
	grand := na + nb
	for _, c := range cells {
		colTotal := c[0] + c[1]
		ea := colTotal * na / grand
		eb := colTotal * nb / grand
		stat += (c[0]-ea)*(c[0]-ea)/ea + (c[1]-eb)*(c[1]-eb)/eb
	}
	return stat, len(cells) - 1
}

func sumPair(c [2]float64) float64 { return c[0] + c[1] }

// TestEngineDistributionEquivalence draws independent samples from the
// naive and fast engines on every family × process and compares (i) the
// winner distributions by two-sample chi-square and (ii) the consensus
// and reduction stopping-time distributions by two-sample KS.
func TestEngineDistributionEquivalence(t *testing.T) {
	trials := eqTrials(t)
	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			name, g, proc := name, g, proc
			t.Run(fmt.Sprintf("%s/%v", name, proc), func(t *testing.T) {
				t.Parallel()
				base := rng.DeriveSeed(0xd15c0, uint64(len(name))*131+uint64(g.N())*7+uint64(proc))
				naive := gatherEq(t, g, proc, EngineNaive, rng.DeriveSeed(base, 1), trials, nil)
				fast := gatherEq(t, g, proc, EngineFast, rng.DeriveSeed(base, 2), trials, nil)

				stat, df := chi2TwoSample(naive.winners, fast.winners)
				if df > 0 {
					crit, ok := chi2Crit001[df]
					if !ok {
						t.Fatalf("no critical value for df=%d", df)
					}
					if stat > crit {
						t.Errorf("winner χ²(%d) = %.2f > %.2f (α=0.001): engines disagree", df, stat, crit)
					}
				}

				ksCrit := ks2Crit001 * math.Sqrt(float64(2*trials)/float64(trials*trials))
				for _, series := range []struct {
					label  string
					na, fa []float64
				}{
					{"consensus steps", naive.steps, fast.steps},
					{"two-adjacent step", naive.twoAdj, fast.twoAdj},
				} {
					d, err := stats.KS2Sample(series.na, series.fa)
					if err != nil {
						t.Fatal(err)
					}
					if d > ksCrit {
						t.Errorf("%s KS distance %.4f > %.4f (α=0.001): engines disagree", series.label, d, ksCrit)
					}
				}
			})
		}
	}
}

// TestHybridSwitchingEquivalence holds the EngineAuto hybrid loop to
// the same distribution-identity standard as the pure fast engine. The
// switching window and cost ratio are shrunk so that runs on the small
// test graphs genuinely cross the naive→fast and fast→naive boundaries
// many times (with the production window of 4096 draws these runs
// would stay naive throughout and the test would be vacuous). Not
// parallel: it mutates the package-level tuning knobs.
func TestHybridSwitchingEquivalence(t *testing.T) {
	oldWindow, oldRatio := hybridWindow, hybridCostRatio
	hybridWindow, hybridCostRatio = 64, 1
	defer func() { hybridWindow, hybridCostRatio = oldWindow, oldRatio }()

	trials := eqTrials(t)
	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			t.Run(fmt.Sprintf("%s/%v", name, proc), func(t *testing.T) {
				base := rng.DeriveSeed(0xa070, uint64(len(name))*131+uint64(g.N())*7+uint64(proc))
				naive := gatherEq(t, g, proc, EngineNaive, rng.DeriveSeed(base, 1), trials, nil)
				auto := gatherEq(t, g, proc, EngineAuto, rng.DeriveSeed(base, 2), trials, nil)

				stat, df := chi2TwoSample(naive.winners, auto.winners)
				if df > 0 {
					if stat > chi2Crit001[df] {
						t.Errorf("winner χ²(%d) = %.2f > %.2f (α=0.001): hybrid disagrees with naive", df, stat, chi2Crit001[df])
					}
				}
				ksCrit := ks2Crit001 * math.Sqrt(float64(2*trials)/float64(trials*trials))
				for _, series := range []struct {
					label  string
					na, au []float64
				}{
					{"consensus steps", naive.steps, auto.steps},
					{"two-adjacent step", naive.twoAdj, auto.twoAdj},
				} {
					d, err := stats.KS2Sample(series.na, series.au)
					if err != nil {
						t.Fatal(err)
					}
					if d > ksCrit {
						t.Errorf("%s KS distance %.4f > %.4f (α=0.001): hybrid disagrees with naive", series.label, d, ksCrit)
					}
				}
			})
		}
	}
}

// TestScratchReuseDistributionEquivalence holds the reused-scratch
// trial pipeline to the same α = 0.001 standard: a fast-engine sample
// drawn through one dirtied Scratch (as TrialsWorker's workers do) must
// match the naive engine's fresh-allocation law in winners and stopping
// times. The byte-identity test (scratch_test.go) proves reuse cannot
// change any trajectory; this arm guards the whole statistical pipeline
// around it — seed plumbing, profile regeneration, engine-state resets.
func TestScratchReuseDistributionEquivalence(t *testing.T) {
	trials := eqTrials(t)
	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			name, g, proc := name, g, proc
			t.Run(fmt.Sprintf("%s/%v", name, proc), func(t *testing.T) {
				t.Parallel()
				base := rng.DeriveSeed(0x5c7a7c, uint64(len(name))*131+uint64(g.N())*7+uint64(proc))
				naive := gatherEq(t, g, proc, EngineNaive, rng.DeriveSeed(base, 1), trials, nil)
				reused := gatherEq(t, g, proc, EngineFast, rng.DeriveSeed(base, 2), trials, NewScratch(g))

				stat, df := chi2TwoSample(naive.winners, reused.winners)
				if df > 0 {
					crit, ok := chi2Crit001[df]
					if !ok {
						t.Fatalf("no critical value for df=%d", df)
					}
					if stat > crit {
						t.Errorf("winner χ²(%d) = %.2f > %.2f (α=0.001): reused scratch disagrees", df, stat, crit)
					}
				}
				ksCrit := ks2Crit001 * math.Sqrt(float64(2*trials)/float64(trials*trials))
				for _, series := range []struct {
					label  string
					na, re []float64
				}{
					{"consensus steps", naive.steps, reused.steps},
					{"two-adjacent step", naive.twoAdj, reused.twoAdj},
				} {
					d, err := stats.KS2Sample(series.na, series.re)
					if err != nil {
						t.Fatal(err)
					}
					if d > ksCrit {
						t.Errorf("%s KS distance %.4f > %.4f (α=0.001): reused scratch disagrees", series.label, d, ksCrit)
					}
				}
			})
		}
	}
}

// TestEngineLemma5WinnerLaw anchors both engines to theory rather than
// to each other. With two adjacent opinions {1,2} the conserved weight
// is a bounded martingale, so optional stopping gives the winner law
// *exactly* on every connected graph (Lemma 5): P[2 wins] equals the
// initial weight fraction of opinion 2 — S(0)/n - 1 for the edge
// process, π(A₂)(0) for the vertex process. Averaged over the uniformly
// random placement both reduce to (n-n1)/n, and the overall winner
// indicator is Bernoulli((n-n1)/n) exactly, so a binomial z-test
// applies with no asymptotic caveat.
func TestEngineLemma5WinnerLaw(t *testing.T) {
	trials := eqTrials(t)
	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			for _, engine := range []Engine{EngineNaive, EngineFast} {
				name, g, proc, engine := name, g, proc, engine
				t.Run(fmt.Sprintf("%s/%v/%v", name, proc, engine), func(t *testing.T) {
					t.Parallel()
					n := g.N()
					n1 := n / 3
					p0 := float64(n-n1) / float64(n)
					base := rng.DeriveSeed(0x1e, uint64(len(name))*977+uint64(g.N())*31+uint64(proc)*5+uint64(engine))
					wins2 := 0
					for trial := 0; trial < trials; trial++ {
						seed := rng.DeriveSeed(base, uint64(trial))
						r := rng.New(seed)
						init, err := TwoOpinionSplit(n, n1, r)
						if err != nil {
							t.Fatal(err)
						}
						res, err := Run(Config{
							Graph:    g,
							Initial:  init,
							Process:  proc,
							Engine:   engine,
							Seed:     rng.SplitMix64(seed),
							MaxSteps: 4 << 20,
						})
						if err != nil {
							t.Fatal(err)
						}
						if !res.Consensus {
							t.Fatalf("trial %d: no consensus after %d steps", trial, res.Steps)
						}
						if res.Winner == 2 {
							wins2++
						}
					}
					z := stats.BinomialZ(wins2, trials, p0)
					if math.Abs(z) > 4.5 {
						t.Errorf("P[2 wins] = %d/%d vs exact %.4f: z = %.2f (want |z| ≤ 4.5)",
							wins2, trials, p0, z)
					}
				})
			}
		}
	}
}

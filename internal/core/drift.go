package core

// Exact one-step drift computations for the martingale results
// (Lemma 3). These enumerate every possible scheduler draw in integer
// arithmetic, so the martingale property is verified exactly rather
// than statistically.

// SignedArcSum returns Σ over directed arcs (v,w) of sign(X_w - X_v).
// By antisymmetry of sign under arc reversal this is identically zero
// for every opinion configuration on every graph, which is precisely
// why both weights in Lemma 3 are martingales:
//
//	E[ΔS   | edge process,   X] = SignedArcSum / 2m = 0   (Lemma 3(i))
//	E[ΔZ_raw | vertex process, X] = SignedArcSum / n  = 0   (Lemma 3(ii))
//
// Tests assert the zero; benchmarks use it as an exact-drift oracle.
func SignedArcSum(s *State) int64 {
	g := s.Graph()
	var total int64
	for v := 0; v < g.N(); v++ {
		xv := s.opinions[v]
		for _, w := range g.Neighbors(v) {
			xw := s.opinions[w]
			switch {
			case xw > xv:
				total++
			case xw < xv:
				total--
			}
		}
	}
	return total
}

// VertexProcessSumDrift returns the exact expected one-step change of
// the plain sum S under the *vertex* process,
// E[ΔS | X] = (1/n) Σ_v (1/d(v)) Σ_{w∈N(v)} sign(X_w - X_v).
// This is generally nonzero on irregular graphs — S is a martingale
// only for the edge process — and the E10 experiment uses it to show
// why the vertex process converges to the degree-weighted average
// instead.
func VertexProcessSumDrift(s *State) float64 {
	g := s.Graph()
	var total float64
	for v := 0; v < g.N(); v++ {
		xv := s.opinions[v]
		var signed int64
		for _, w := range g.Neighbors(v) {
			xw := s.opinions[w]
			switch {
			case xw > xv:
				signed++
			case xw < xv:
				signed--
			}
		}
		total += float64(signed) / float64(g.Degree(v))
	}
	return total / float64(g.N())
}

// EdgeProcessDegSumDrift returns the exact expected one-step change of
// the degree-weighted raw sum Σ d(v)X_v under the *edge* process,
// E[ΔZ_raw | X] = (1/2m) Σ_arcs d(v)·sign(X_w - X_v).
// Nonzero in general on irregular graphs: the mirror image of
// VertexProcessSumDrift.
func EdgeProcessDegSumDrift(s *State) float64 {
	g := s.Graph()
	var total int64
	for v := 0; v < g.N(); v++ {
		xv := s.opinions[v]
		var signed int64
		for _, w := range g.Neighbors(v) {
			xw := s.opinions[w]
			switch {
			case xw > xv:
				signed++
			case xw < xv:
				signed--
			}
		}
		total += int64(g.Degree(v)) * signed
	}
	return float64(total) / float64(g.DegreeSum())
}

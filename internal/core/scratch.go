package core

import (
	"fmt"
	"math/rand/v2"

	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
)

// scratchReuseTotal counts trials that ran on a reused (ResetTo'd)
// scratch State instead of a freshly allocated one.
var scratchReuseTotal = obs.Default.Counter("core_scratch_reuse_total")

// Scratch is a per-worker arena of reusable simulation state for
// repeated trials on one graph: the State, the engines' FastState
// index, the RNG, and an initial-opinion buffer are allocated once and
// reset in place by each run, so a steady-state trial performs O(1)
// allocations instead of O(n + m). Wire one into Config.Scratch (the
// sim harness's TrialsWorker does this per worker goroutine).
//
// A Scratch is not safe for concurrent use: it must be owned by a
// single goroutine, and at most one Run may use it at a time. Reuse is
// distribution-neutral — a seeded run produces a byte-identical Result
// on a freshly constructed Scratch and on one dirtied by any number of
// earlier trials.
type Scratch struct {
	g       *graph.Graph   // nil when bound to an implicit topology
	topo    graph.Topology // the backing structure (== g when CSR)
	state   *State
	fast    [2]*FastState // indexed by Process (vertex, edge)
	pcg     *rand.PCG
	r       *rand.Rand
	initBuf []int
	blk     *blockArena // blocked multi-trial kernel arena (block.go)
}

// NewScratch returns an empty scratch bound to g. State and engine
// structures are allocated lazily by the first run that needs them.
func NewScratch(g *graph.Graph) *Scratch {
	pcg := rand.NewPCG(0, 0)
	return &Scratch{g: g, topo: g, pcg: pcg, r: rand.New(pcg)}
}

// NewScratchTopo returns an empty scratch bound to an arbitrary
// topology — the implicit-family counterpart of NewScratch, for use
// with BlockConfig.Topology. Binding a materialized *graph.Graph is
// equivalent to NewScratch.
func NewScratchTopo(t graph.Topology) *Scratch {
	g, _ := t.(*graph.Graph)
	pcg := rand.NewPCG(0, 0)
	return &Scratch{g: g, topo: t, pcg: pcg, r: rand.New(pcg)}
}

// Graph returns the graph this scratch is bound to, or nil when it is
// bound to an implicit topology (use Topology then).
func (sc *Scratch) Graph() *graph.Graph { return sc.g }

// Topology returns the structure this scratch is bound to.
func (sc *Scratch) Topology() graph.Topology { return sc.topo }

// Rand reseeds the scratch's generator to the given seed and returns
// it. The resulting stream is identical to rng.New(seed): PCG.Seed
// installs exactly the state rand.NewPCG would, and rand.Rand holds no
// state of its own.
func (sc *Scratch) Rand(seed uint64) *rand.Rand {
	sc.pcg.Seed(seed, rng.SplitMix64(seed))
	return sc.r
}

// Initial returns the scratch's reusable initial-opinion buffer of
// length g.N(), for use with the *Into initial-profile variants
// (initial.go). The buffer's contents are whatever the previous trial
// left there; callers must fill every entry.
func (sc *Scratch) Initial() []int {
	if sc.initBuf == nil {
		sc.initBuf = make([]int, sc.topo.N())
	}
	return sc.initBuf
}

// stateFor returns the scratch's State reset to the given initial
// opinions, allocating it on first use. Run calls this in place of
// NewState.
func (sc *Scratch) stateFor(g *graph.Graph, initial []int) (*State, error) {
	if g != sc.g {
		return nil, fmt.Errorf("core: Config.Scratch is bound to %v, but Config.Graph is %v", sc.g, g)
	}
	if sc.state == nil {
		s, err := NewState(g, initial)
		if err != nil {
			return nil, err
		}
		sc.state = s
		return s, nil
	}
	if err := sc.state.ResetTo(initial); err != nil {
		return nil, err
	}
	scratchReuseTotal.Inc()
	return sc.state, nil
}

// fastFor returns a FastState for the scratch's State under proc,
// reusing (and Reset-ing) the one built by an earlier trial when
// available. A state other than the scratch's own falls through to a
// fresh NewFastState.
func (sc *Scratch) fastFor(s *State, proc Process) (*FastState, error) {
	if s != sc.state || (proc != VertexProcess && proc != EdgeProcess) {
		return NewFastState(s, proc)
	}
	if f := sc.fast[proc]; f != nil {
		f.Reset()
		return f, nil
	}
	f, err := NewFastState(s, proc)
	if err != nil {
		return nil, err
	}
	sc.fast[proc] = f
	return f, nil
}

// blockArenaFor returns the scratch's blocked-kernel arena, allocating
// it on first use. The arena (block.go) owns the SoA opinion slab, the
// per-trial row states, and the per-process hand-off FastStates; like
// the rest of the scratch it is bound to one graph and one goroutine.
func (sc *Scratch) blockArenaFor(t graph.Topology) (*blockArena, error) {
	if t != sc.topo {
		return nil, fmt.Errorf("core: Config.Scratch is bound to %v, but the run's topology is %v", sc.topo, t)
	}
	if sc.blk == nil {
		sc.blk = newBlockArena(t)
	}
	return sc.blk, nil
}

// newFastStateFor builds (or reuses, when a scratch is present) the
// FastState for s under proc: the single construction funnel for the
// fast and hybrid engines.
func newFastStateFor(sc *Scratch, s *State, proc Process) (*FastState, error) {
	if sc != nil {
		return sc.fastFor(s, proc)
	}
	return NewFastState(s, proc)
}

package core

import (
	"math"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
)

func TestRunReachesConsensus(t *testing.T) {
	g := graph.Complete(30)
	r := rng.New(41)
	res, err := Run(Config{
		Graph:   g,
		Initial: UniformOpinions(30, 5, r),
		Process: VertexProcess,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatalf("no consensus after %d steps", res.Steps)
	}
	if res.Winner < 1 || res.Winner > 5 {
		t.Errorf("winner %d outside initial range", res.Winner)
	}
	if res.TwoAdjacentStep < 0 || res.TwoAdjacentStep > res.Steps {
		t.Errorf("TwoAdjacentStep = %d (steps %d)", res.TwoAdjacentStep, res.Steps)
	}
	if res.ThreeStep < 0 || res.ThreeStep > res.TwoAdjacentStep {
		t.Errorf("ThreeStep = %d > TwoAdjacentStep %d", res.ThreeStep, res.TwoAdjacentStep)
	}
	if res.FinalMin != res.Winner || res.FinalMax != res.Winner {
		t.Errorf("final range [%d,%d] at consensus %d", res.FinalMin, res.FinalMax, res.Winner)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(Config{Graph: graph.Complete(3), Initial: []int{1}}); err == nil {
		t.Error("bad initial length accepted")
	}
}

func TestRunUntilTwoAdjacent(t *testing.T) {
	g := graph.Complete(40)
	r := rng.New(42)
	res, err := Run(Config{
		Graph:   g,
		Initial: UniformOpinions(40, 6, r),
		Stop:    UntilTwoAdjacent,
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMax-res.FinalMin > 1 {
		t.Errorf("stopped with range %d", res.FinalMax-res.FinalMin)
	}
	if res.TwoAdjacentStep != res.Steps {
		t.Errorf("TwoAdjacentStep %d != Steps %d", res.TwoAdjacentStep, res.Steps)
	}
	if math.IsNaN(res.WeightAtTwoAdjacent) {
		t.Error("WeightAtTwoAdjacent not recorded")
	}
}

func TestRunUntilMaxSteps(t *testing.T) {
	g := graph.Complete(10)
	r := rng.New(43)
	res, err := Run(Config{
		Graph:    g,
		Initial:  UniformOpinions(10, 3, r),
		Stop:     UntilMaxSteps,
		MaxSteps: 123,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 123 {
		t.Errorf("steps = %d, want 123", res.Steps)
	}
}

func TestRunImmediateConsensus(t *testing.T) {
	g := graph.Complete(5)
	res, err := Run(Config{Graph: g, Initial: []int{7, 7, 7, 7, 7}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus || res.Winner != 7 || res.Steps != 0 {
		t.Errorf("immediate consensus: %+v", res)
	}
	if res.TwoAdjacentStep != 0 || res.ThreeStep != 0 {
		t.Errorf("milestones = %d,%d, want 0,0", res.ThreeStep, res.TwoAdjacentStep)
	}
}

func TestRunObserverAborts(t *testing.T) {
	g := graph.Complete(20)
	r := rng.New(44)
	calls := 0
	res, err := Run(Config{
		Graph:        g,
		Initial:      UniformOpinions(20, 4, r),
		Seed:         5,
		ObserveEvery: 10,
		Observer: func(s *State) bool {
			calls++
			return calls < 3
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Error("run not aborted")
	}
	if res.Steps > 100 {
		t.Errorf("aborted run took %d steps", res.Steps)
	}
}

func TestRunTraceSupport(t *testing.T) {
	g := graph.Complete(30)
	r := rng.New(45)
	init, err := BlockOpinions(30, []int{10, 10, 0, 0, 10}, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Graph:        g,
		Initial:      init,
		Seed:         6,
		TraceSupport: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) < 2 {
		t.Fatalf("only %d stages traced", len(res.Stages))
	}
	first := res.Stages[0]
	if first.FromStep != 0 {
		t.Errorf("first stage at step %d", first.FromStep)
	}
	wantFirst := []int{1, 2, 5}
	if len(first.Opinions) != 3 {
		t.Fatalf("first stage opinions %v, want %v", first.Opinions, wantFirst)
	}
	for i := range wantFirst {
		if first.Opinions[i] != wantFirst[i] {
			t.Fatalf("first stage opinions %v, want %v", first.Opinions, wantFirst)
		}
	}
	last := res.Stages[len(res.Stages)-1]
	if len(last.Opinions) != 1 || last.Opinions[0] != res.Winner {
		t.Errorf("last stage %v, winner %d", last.Opinions, res.Winner)
	}
	// Steps strictly increase.
	for i := 1; i < len(res.Stages); i++ {
		if res.Stages[i].FromStep <= res.Stages[i-1].FromStep {
			t.Errorf("stage steps not increasing at %d", i)
		}
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	g := graph.Complete(25)
	r := rng.New(46)
	init := UniformOpinions(25, 5, r)
	cfg := Config{Graph: g, Initial: init, Seed: 77}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Winner != b.Winner || a.Steps != b.Steps || a.TwoAdjacentStep != b.TwoAdjacentStep {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	cfg.Seed = 78
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Steps == a.Steps && c.Winner == a.Winner && c.TwoAdjacentStep == a.TwoAdjacentStep {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestRunManyCount(t *testing.T) {
	g := graph.Complete(15)
	r := rng.New(47)
	results, err := RunMany(Config{Graph: g, Initial: UniformOpinions(15, 3, r), Seed: 9}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if !res.Consensus {
			t.Errorf("trial %d no consensus", i)
		}
	}
}

func TestRunEdgeProcess(t *testing.T) {
	g := graph.Star(20)
	r := rng.New(48)
	res, err := Run(Config{
		Graph:   g,
		Initial: UniformOpinions(20, 3, r),
		Process: EdgeProcess,
		Seed:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatalf("no consensus on star after %d steps", res.Steps)
	}
}

func TestInitialProfiles(t *testing.T) {
	r := rng.New(49)
	ops := UniformOpinions(1000, 7, r)
	for _, x := range ops {
		if x < 1 || x > 7 {
			t.Fatalf("uniform opinion %d outside [1,7]", x)
		}
	}
	blocks, err := BlockOpinions(10, []int{3, 0, 7}, r)
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, x := range blocks {
		count[x]++
	}
	if count[1] != 3 || count[3] != 7 || count[2] != 0 {
		t.Errorf("block counts %v", count)
	}
	if _, err := BlockOpinions(5, []int{2, 2}, r); err == nil {
		t.Error("wrong block total accepted")
	}
	if _, err := BlockOpinions(5, []int{-1, 6}, r); err == nil {
		t.Error("negative block accepted")
	}

	two, err := TwoOpinionSplit(10, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, x := range two {
		if x == 1 {
			ones++
		}
	}
	if ones != 4 {
		t.Errorf("TwoOpinionSplit placed %d ones", ones)
	}
	if _, err := TwoOpinionSplit(10, 11, r); err == nil {
		t.Error("n1 > n accepted")
	}

	ext := ExtremesOpinions(11, 5, r)
	for _, x := range ext {
		if x != 1 && x != 5 {
			t.Fatalf("extremes profile contains %d", x)
		}
	}

	planted, err := PlantedSetOpinions(6, []int{1, 3}, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if planted[1] != 9 || planted[3] != 9 || planted[0] != 2 {
		t.Errorf("planted = %v", planted)
	}
	if _, err := PlantedSetOpinions(6, []int{7}, 1, 2); err == nil {
		t.Error("out-of-range planted vertex accepted")
	}

	weighted, err := WeightedOpinions(5000, []float64{0.7, 0.2, 0.1}, r)
	if err != nil {
		t.Fatal(err)
	}
	c := map[int]int{}
	for _, x := range weighted {
		c[x]++
	}
	if c[1] < 3000 || c[3] > 1000 {
		t.Errorf("weighted counts %v implausible", c)
	}
	if _, err := WeightedOpinions(3, nil, r); err == nil {
		t.Error("empty weights accepted")
	}
}

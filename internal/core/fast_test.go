package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
)

func TestGeomSkipDistribution(t *testing.T) {
	r := rng.New(11)
	// p = 1/4: mean skip (1-p)/p = 3.
	const trials = 200000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(geomSkip(r, 1, 4, 1<<40))
	}
	mean := sum / trials
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Geom(1/4) empirical mean %.4f, want ≈ 3", mean)
	}
	// p = 1 always returns 0; the limit truncates the tail.
	for i := 0; i < 100; i++ {
		if k := geomSkip(r, 7, 7, 100); k != 0 {
			t.Fatalf("geomSkip(p=1) = %d", k)
		}
		if k := geomSkip(r, 1, 1<<50, 5); k != 5 {
			t.Fatalf("geomSkip(p≈0, limit=5) = %d, want 5", k)
		}
	}
}

// testGraphs returns the small families used by the bookkeeping and
// equivalence tests: one from each structural class in the paper.
func testGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	rr, err := graph.RandomRegular(16, 4, rng.New(0xfa))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"path":     graph.Path(9),
		"cycle":    graph.Cycle(12),
		"complete": graph.Complete(8),
		"regular":  rr,
	}
}

// TestFastStateBookkeeping is the property test for the incremental
// discordance accounting: after every opinion update, recomputing the
// discordant-arc index and active mass from scratch must match the
// incrementally maintained values, on every family and both processes.
func TestFastStateBookkeeping(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			r := rng.New(rng.DeriveSeed(0xb00c, uint64(g.N())+uint64(proc)))
			s := MustState(g, UniformOpinions(g.N(), 4, r))
			f, err := NewFastState(s, proc)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, proc, err)
			}
			if err := f.CheckDiscordance(); err != nil {
				t.Fatalf("%s/%v after build: %v", name, proc, err)
			}
			for step := 0; step < 400; step++ {
				// A random in-range move of a random vertex, mimicking any
				// range-contracting rule (including no-ops).
				v := r.IntN(g.N())
				x := s.Min() + r.IntN(s.Range()+1)
				f.SetOpinion(v, x)
				if err := f.CheckDiscordance(); err != nil {
					t.Fatalf("%s/%v step %d (v=%d x=%d): %v", name, proc, step, v, x, err)
				}
			}
		}
	}
}

// TestFastSampleDiscordantExact verifies the conditional pair law on a
// small fixed configuration: the exact rational active mass for both
// processes, and the sampled pair frequencies against the closed-form
// conditional law — uniform over discordant arcs for the edge process,
// ∝ 1/d(v) for the vertex process (exercising the rejection step, since
// the graph is irregular).
func TestFastSampleDiscordantExact(t *testing.T) {
	// Star-with-tail: degrees differ so the vertex process weights are
	// non-uniform. Vertices: 0 center of star {1,2,3}, tail 3-4.
	g := graph.MustFromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 3, V: 4}})
	init := []int{1, 2, 1, 2, 2}
	// Discordant arcs: (0,1),(1,0),(0,3),(3,0) — vertices 2,4 agree with
	// every neighbour.
	s := MustState(g, init)
	f, err := NewFastState(s, VertexProcess)
	if err != nil {
		t.Fatal(err)
	}
	// d(0)=3, d(1)=1, d(3)=2 ⇒ L = lcm(3,1,2,1) = 6; the numerator sums
	// L/d(tail) over discordant arcs: (0,1):2 + (1,0):6 + (0,3):2 +
	// (3,0):3 = 13 over den 5·6.
	num, den := f.ActiveMass()
	if num != 13 || den != 30 {
		t.Fatalf("vertex ActiveMass = %d/%d, want 13/30", num, den)
	}

	fe, err := NewFastState(s, EdgeProcess)
	if err != nil {
		t.Fatal(err)
	}
	num, den = fe.ActiveMass()
	if num != 4 || den != 8 {
		t.Fatalf("edge ActiveMass = %d/%d, want 4/8", num, den)
	}

	// Empirical conditional law. Vertex process: P[(v,w)] ∝ 1/d(v),
	// normalizer 13/6 ⇒ (0,1): 2/13, (1,0): 6/13, (0,3): 2/13,
	// (3,0): 3/13. Edge process: each discordant arc 1/4.
	wantVertex := map[[2]int]float64{
		{0, 1}: 2.0 / 13, {1, 0}: 6.0 / 13, {0, 3}: 2.0 / 13, {3, 0}: 3.0 / 13,
	}
	wantEdge := map[[2]int]float64{
		{0, 1}: 0.25, {1, 0}: 0.25, {0, 3}: 0.25, {3, 0}: 0.25,
	}
	const samples = 200000
	for name, tc := range map[string]struct {
		fs   *FastState
		want map[[2]int]float64
	}{"vertex": {f, wantVertex}, "edge": {fe, wantEdge}} {
		r := rng.New(rng.DeriveSeed(0xd15c, uint64(len(name))))
		got := map[[2]int]int{}
		for i := 0; i < samples; i++ {
			v, w := tc.fs.sampleDiscordant(r)
			got[[2]int{v, w}]++
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%s: sampled %d distinct pairs, want %d (%v)", name, len(got), len(tc.want), got)
		}
		for pair, p := range tc.want {
			emp := float64(got[pair]) / samples
			if math.Abs(emp-p) > 0.005 { // ~4.5σ at 200k samples
				t.Errorf("%s: P[%v] = %.4f, want %.4f", name, pair, emp, p)
			}
		}
	}
}

func TestFastRunReachesConsensus(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			r := rng.New(rng.DeriveSeed(0xfa57, uint64(g.N())*3+uint64(proc)))
			res, err := Run(Config{
				Graph:   g,
				Initial: UniformOpinions(g.N(), 4, r),
				Process: proc,
				Engine:  EngineFast,
				Seed:    9,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, proc, err)
			}
			if !res.Consensus {
				t.Fatalf("%s/%v: no consensus after %d steps", name, proc, res.Steps)
			}
			if res.Winner < 1 || res.Winner > 4 {
				t.Errorf("%s/%v: winner %d outside initial range", name, proc, res.Winner)
			}
			if res.TwoAdjacentStep < 0 || res.TwoAdjacentStep > res.Steps {
				t.Errorf("%s/%v: TwoAdjacentStep %d vs steps %d", name, proc, res.TwoAdjacentStep, res.Steps)
			}
			if res.ThreeStep < 0 || res.ThreeStep > res.TwoAdjacentStep {
				t.Errorf("%s/%v: ThreeStep %d > TwoAdjacentStep %d", name, proc, res.ThreeStep, res.TwoAdjacentStep)
			}
			if res.FinalMin != res.Winner || res.FinalMax != res.Winner {
				t.Errorf("%s/%v: final range [%d,%d] at consensus %d", name, proc, res.FinalMin, res.FinalMax, res.Winner)
			}
		}
	}
}

// TestFastIdleJump: a run started at consensus under UntilMaxSteps has
// active probability zero; the fast engine must still account for every
// idle step and report exactly MaxSteps, like the naive engine.
func TestFastIdleJump(t *testing.T) {
	g := graph.Cycle(10)
	init := make([]int, 10)
	for i := range init {
		init[i] = 3
	}
	for _, engine := range []Engine{EngineNaive, EngineFast} {
		res, err := Run(Config{
			Graph:    g,
			Initial:  init,
			Engine:   engine,
			Stop:     UntilMaxSteps,
			MaxSteps: 12345,
			Seed:     4,
		})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if res.Steps != 12345 {
			t.Errorf("%v: steps %d, want 12345", engine, res.Steps)
		}
		if !res.Consensus || res.Winner != 3 {
			t.Errorf("%v: consensus %v winner %d", engine, res.Consensus, res.Winner)
		}
	}
}

// TestFastObserverBoundaries: the fast engine must invoke the observer
// at exactly the naive engine's call sites — step 0 and every multiple
// of ObserveEvery up to the stopping step — even when those multiples
// fall inside skipped idle stretches.
func TestFastObserverBoundaries(t *testing.T) {
	g := graph.Cycle(12)
	r := rng.New(21)
	init := UniformOpinions(12, 3, r)
	const every = 7
	for _, engine := range []Engine{EngineNaive, EngineFast} {
		var seen []int64
		res, err := Run(Config{
			Graph:        g,
			Initial:      init,
			Engine:       engine,
			Seed:         31,
			ObserveEvery: every,
			Observer: func(s *State) bool {
				seen = append(seen, s.Steps())
				return true
			},
		})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if len(seen) == 0 || seen[0] != 0 {
			t.Fatalf("%v: observer not called at step 0: %v", engine, seen)
		}
		for i, st := range seen[1:] {
			if want := int64(every) * int64(i+1); st != want {
				t.Fatalf("%v: observation %d at step %d, want %d (full sequence %v)", engine, i+1, st, want, seen)
			}
		}
		if last := seen[len(seen)-1]; last > res.Steps || res.Steps-last >= every {
			t.Errorf("%v: last observation at %d inconsistent with stopping step %d", engine, last, res.Steps)
		}
	}
}

// TestFastObserverAbort: aborting from an observer stops both engines
// at exactly the observed step.
func TestFastObserverAbort(t *testing.T) {
	g := graph.Cycle(16)
	r := rng.New(5)
	init := UniformOpinions(16, 4, r)
	for _, engine := range []Engine{EngineNaive, EngineFast} {
		calls := 0
		res, err := Run(Config{
			Graph:        g,
			Initial:      init,
			Engine:       engine,
			Seed:         6,
			Stop:         UntilMaxSteps,
			MaxSteps:     1 << 40,
			ObserveEvery: 11,
			Observer: func(s *State) bool {
				calls++
				return calls <= 3 // abort on the 4th call (step 33)
			},
		})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if !res.Aborted {
			t.Fatalf("%v: not aborted", engine)
		}
		if res.Steps != 33 {
			t.Errorf("%v: aborted at step %d, want 33", engine, res.Steps)
		}
	}
}

func TestFastRejectsNonPairwise(t *testing.T) {
	var rule Rule = nonPairwise{}
	g := graph.Cycle(8)
	r := rng.New(1)
	_, err := Run(Config{
		Graph:   g,
		Initial: UniformOpinions(8, 3, r),
		Rule:    rule,
		Engine:  EngineFast,
		Seed:    2,
	})
	if err == nil {
		t.Fatal("fast engine accepted a non-pairwise rule")
	}
	// Auto must silently fall back instead.
	res, err := Run(Config{
		Graph:   g,
		Initial: UniformOpinions(8, 3, r),
		Rule:    rule,
		Engine:  EngineAuto,
		Seed:    3,
	})
	if err != nil {
		t.Fatalf("auto engine: %v", err)
	}
	if !res.Consensus {
		t.Errorf("auto fallback did not reach consensus (steps %d)", res.Steps)
	}
}

type nonPairwise struct{}

func (nonPairwise) Name() string { return "non-pairwise" }
func (nonPairwise) Step(s *State, r *rand.Rand, v, w int) {
	DIV{}.Step(s, r, v, w)
}

func TestEngineParseAndString(t *testing.T) {
	cases := map[string]Engine{"naive": EngineNaive, "Fast": EngineFast, " AUTO ": EngineAuto}
	for in, want := range cases {
		got, err := ParseEngine(in)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("ParseEngine accepted junk")
	}
	if EngineNaive.String() != "naive" || EngineFast.String() != "fast" || EngineAuto.String() != "auto" {
		t.Error("Engine.String wrong")
	}
	if _, err := Run(Config{Graph: graph.Cycle(4), Initial: []int{1, 1, 2, 2}, Engine: Engine(99)}); err == nil {
		t.Error("unknown engine value accepted")
	}
}

// TestAutoHeuristic: the hybrid cost model must price a fast active
// step much higher on dense graphs than on sparse ones (so Auto only
// enters skip-sampling on K_n when discordance is truly microscopic),
// and the hybrid loop must keep exact step accounting across the
// naive→fast transition: from a consensus start every draw is idle, so
// Auto first measures a silent window naively, then jumps, and an
// UntilMaxSteps run must still report exactly MaxSteps.
func TestAutoHeuristic(t *testing.T) {
	dense := hybridCostUnits(graph.Complete(100))
	rr, err := graph.RandomRegular(128, 4, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sparse := hybridCostUnits(rr)
	if dense < 30 || dense > 45 {
		t.Errorf("K_100 cost units = %d, want ≈ d̄/3 + 4 = 37", dense)
	}
	if sparse < 4 || sparse > 6 {
		t.Errorf("RR(128,4) cost units = %d, want ≈ 5", sparse)
	}

	init := make([]int, rr.N()) // consensus from the start: all draws idle
	for i := range init {
		init[i] = 3
	}
	const maxSteps = 3*4096 + 1234 // not a multiple of the naive window
	res, err := Run(Config{
		Graph:    rr,
		Initial:  init,
		Engine:   EngineAuto,
		Seed:     9,
		Stop:     UntilMaxSteps,
		MaxSteps: maxSteps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != maxSteps {
		t.Errorf("auto UntilMaxSteps ran %d steps, want %d", res.Steps, maxSteps)
	}
	if !res.Consensus || res.Winner != 3 {
		t.Errorf("auto lost consensus: %+v", res)
	}
}

// TestFastDegreeLcmOverflow: wildly irregular degree sets overflow the
// vertex process's exact integer scaling; EngineFast must error and
// EngineAuto must fall back.
func TestFastDegreeLcmOverflow(t *testing.T) {
	// A caterpillar whose spine vertices have many distinct prime-ish
	// degrees: lcm(3,5,7,11,13,17,19,23,29,31,37,41,43,47) > 2^30.
	primes := []int{3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
	var edges []graph.Edge
	next := len(primes)
	for i := range primes {
		if i > 0 {
			edges = append(edges, graph.Edge{U: i - 1, V: i})
		}
		want := primes[i]
		have := 0
		if i > 0 {
			have++
		}
		if i < len(primes)-1 {
			have++ // the spine edge to i+1, added next iteration
		}
		for have < want {
			edges = append(edges, graph.Edge{U: i, V: next})
			next++
			have++
		}
	}
	g := graph.MustFromEdges(next, edges)
	r := rng.New(3)
	init := UniformOpinions(g.N(), 3, r)
	if _, err := Run(Config{Graph: g, Initial: init, Engine: EngineFast, Seed: 4, Process: VertexProcess}); err == nil {
		t.Error("fast engine accepted a degree-lcm overflow")
	}
	res, err := Run(Config{Graph: g, Initial: init, Engine: EngineAuto, Seed: 4, Process: VertexProcess})
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if !res.Consensus {
		t.Errorf("auto fallback did not reach consensus (steps %d)", res.Steps)
	}
	// The edge process needs no scaling and must accept the same graph.
	if _, err := Run(Config{Graph: g, Initial: init, Engine: EngineFast, Seed: 4, Process: EdgeProcess}); err != nil {
		t.Errorf("edge process rejected irregular graph: %v", err)
	}
}

package core

import "math/bits"

// This file holds the topology-generic blocked kernels: the lane loops
// and complete-graph chunk kernels of block.go, generalized over (a)
// the opinion representation — int32 absolute values or the compact
// base-relative byte slab — and (b) the structure backend — CSR arrays
// when the run has a materialized graph, Topology interface calls when
// it runs an implicit family. The draw structure (Lemire thresholds,
// half-word spare, one-step lookahead) is transcribed from the tuned
// CSR loops line for line, so a trial consumes its stream identically
// on every backend × representation combination and trajectories stay
// byte-identical — the property the equivalence tests pin. The tuned
// CSR + int32 loops in block.go are untouched and still serve that
// combination.

// opcell is the opinion-slab element type: int32 for the absolute
// representation, uint8 for the compact base-relative one.
type opcell interface{ ~int32 | ~uint8 }

// slabOf returns the state's live opinion slab at the requested
// element type. The type switch is on the type parameter, so each
// instantiation reduces to a single field load.
func slabOf[O opcell](s *State) []O {
	var z O
	if _, ok := any(z).(int32); ok {
		return any(s.opinions).([]O)
	}
	return any(s.opb).([]O)
}

// biasOf returns the offset mapping a slab value to its counts index:
// counts[int32(op[v]) - bias]. The int32 representation stores
// absolute opinions (bias = base); the byte representation stores
// base-relative ones (bias = 0).
func biasOf[O opcell](s *State) int32 {
	var z O
	if _, ok := any(z).(int32); ok {
		return s.base
	}
	return 0
}

// chunkCompleteSmallG is chunkCompleteSmall generalized over the
// opinion representation. The complete-graph kernel touches no
// adjacency at all, so the one transcription serves CSR and implicit
// backends alike.
func chunkCompleteSmallG[O opcell](b *blockRun, row *blockRow) {
	s := row.s
	st := &row.stream
	op := slabOf[O](s)
	counts := s.counts
	bias := biasOf[O](s)
	m := uint32(b.m)
	d, magic := b.d, b.magic
	thresh := -m % m // (2^32 - m) mod m
	probe := row.probe != nil
	limit := hybridWindow
	if rem := b.maxSteps - s.Steps(); rem < limit {
		limit = rem
	}
	spare, haveSpare := row.spare, row.haveSpare
	var drawn, committed, active, sumDelta int64
	for drawn < limit {
		var x uint32
		if haveSpare {
			x, haveSpare = spare, false
		} else {
			word := st.Uint64()
			x, spare, haveSpare = uint32(word), uint32(word>>32), true
		}
		prod := uint64(x) * uint64(m)
		if uint32(prod) < thresh {
			continue // rejected half-word: biased residue, redraw
		}
		q := uint64(prod >> 32)
		drawn++
		v := q * magic >> 40
		w := q - v*d
		if w >= v {
			w++
		}
		xv := op[v]
		xw := op[w]
		if xv == xw {
			if probe {
				row.batch.Idle++
			}
			continue
		}
		active++
		var nw O
		if xv < xw {
			nw = xv + 1
			sumDelta++
		} else {
			nw = xv - 1
			sumDelta--
		}
		op[v] = nw
		i := int32(nw) - bias
		j := int32(xv) - bias
		counts[i]++
		counts[j]--
		if probe {
			row.batch.Active++
		}
		if counts[i] == 1 || counts[j] == 0 {
			s.addSteps(drawn - committed)
			committed = drawn
			b.syncCompleteState(s, sumDelta)
			sumDelta = 0
			s.supVer++
			if b.afterSupport(row) {
				break
			}
		}
	}
	s.addSteps(drawn - committed)
	b.syncCompleteState(s, sumDelta)
	row.spare, row.haveSpare = spare, haveSpare
	row.windowDraws += drawn
	row.windowActive += active
}

// chunkCompleteBigG is chunkCompleteBig generalized over the opinion
// representation: full-word draws, hardware divide, general SetOpinion
// path (absOff converts a slab value back to the absolute opinion).
func chunkCompleteBigG[O opcell](b *blockRun, row *blockRow) {
	s := row.s
	st := &row.stream
	op := slabOf[O](s)
	absOff := int(s.base - biasOf[O](s))
	m, d := b.m, b.d
	probe := row.probe != nil
	limit := hybridWindow
	if rem := b.maxSteps - s.Steps(); rem < limit {
		limit = rem
	}
	var pending int64
	for i := int64(0); i < limit; i++ {
		x := st.Uint64()
		hi, lo := bits.Mul64(x, m)
		if lo < m {
			hi = st.Uint64nSlow(hi, lo, m)
		}
		v := hi / d
		w := hi - v*d
		if w >= v {
			w++
		}
		pending++
		xv := op[v]
		if xv == op[w] {
			if probe {
				row.batch.Idle++
			}
			continue
		}
		row.windowActive++
		s.addSteps(pending)
		pending = 0
		if probe {
			row.batch.Active++
		}
		if xv < op[w] {
			s.SetOpinion(int(v), int(xv)+absOff+1)
		} else {
			s.SetOpinion(int(v), int(xv)+absOff-1)
		}
		if s.SupportVersion() != row.prevVer && b.afterSupport(row) {
			row.windowDraws += i + 1
			return
		}
	}
	s.addSteps(pending)
	row.windowDraws += limit
}

// drawLaneTopoVertex is drawLaneVertex with the degree and neighbour
// lookups resolved through the CSR arrays when present (the compact
// CSR combination) and the Topology interface otherwise. The Lemire
// structure — eager threshold on the fixed bound n, lazy threshold in
// the ambiguous band for the varying degree bound, half-word spare —
// is identical, so stream consumption matches the tuned loop draw for
// draw, and the sorted-neighbour contract makes the resulting w
// identical too.
func drawLaneTopoVertex(b *blockRun, row *blockRow) {
	st := &row.stream
	n32 := uint32(b.un)
	threshN := -n32 % n32 // (2^32 - n) mod n
	var v uint32
	for {
		var x uint32
		if row.haveSpare {
			x, row.haveSpare = row.spare, false
		} else {
			word := st.Uint64()
			x, row.spare, row.haveSpare = uint32(word), uint32(word>>32), true
		}
		prod := uint64(x) * uint64(n32)
		if uint32(prod) >= threshN {
			v = uint32(prod >> 32)
			break
		}
	}
	var d32 uint32
	var o int64
	if b.off != nil {
		o = b.off[v]
		d32 = uint32(b.off[v+1] - o)
	} else {
		d32 = uint32(b.topo.Degree(int(v)))
	}
	var ni uint32
	for {
		var x uint32
		if row.haveSpare {
			x, row.haveSpare = row.spare, false
		} else {
			word := st.Uint64()
			x, row.spare, row.haveSpare = uint32(word), uint32(word>>32), true
		}
		prod := uint64(x) * uint64(d32)
		lo := uint32(prod)
		if lo >= d32 || lo >= -d32%d32 {
			ni = uint32(prod >> 32)
			break
		}
	}
	row.nextV = int32(v)
	if b.off != nil {
		row.nextW = b.adj[o+int64(ni)]
	} else {
		row.nextW = int32(b.topo.Neighbor(int(v), int(ni)))
	}
	row.nextDeg = int64(d32)
}

// drawLaneTopoEdge is drawLaneEdge with the arc resolved through the
// CSR tails/heads arrays when present and the topology's arc map
// otherwise (vertex-major arc order on both, so the same index yields
// the same pair).
func drawLaneTopoEdge(b *blockRun, row *blockRow) {
	st := &row.stream
	a32 := uint32(b.arcs)
	threshA := -a32 % a32 // (2^32 - arcs) mod arcs
	var ai uint32
	for {
		var x uint32
		if row.haveSpare {
			x, row.haveSpare = row.spare, false
		} else {
			word := st.Uint64()
			x, row.spare, row.haveSpare = uint32(word), uint32(word>>32), true
		}
		prod := uint64(x) * uint64(a32)
		if uint32(prod) >= threshA {
			ai = uint32(prod >> 32)
			break
		}
	}
	if b.tails != nil {
		v := b.tails[ai]
		row.nextV = v
		row.nextW = b.adj[ai]
		row.nextDeg = b.off[v+1] - b.off[v]
	} else {
		v, w := b.atopo.Arc(int64(ai))
		row.nextV = int32(v)
		row.nextW = int32(w)
		row.nextDeg = int64(b.topo.Degree(v))
	}
}

// laneLoopTopoVertex is laneLoopVertex generalized over representation
// and backend: same lookahead, same inlined DIV update, same cold
// commit/sync path, with the counts index shifted by the
// representation's bias.
func laneLoopTopoVertex[O opcell](b *blockRun, live []*blockRow) []*blockRow {
	var touch O
	for li := 0; len(live) > 0; {
		if li >= len(live) {
			li = 0
		}
		row := live[li]
		s := row.s
		op := slabOf[O](s)
		bias := biasOf[O](s)
		if !row.haveNext {
			drawLaneTopoVertex(b, row)
			row.haveNext = true
		}
		v, w, dv := row.nextV, row.nextW, row.nextDeg
		drawLaneTopoVertex(b, row)
		touch += op[row.nextV] ^ op[row.nextW]
		row.laneDrawn++
		row.lanePending++
		xv := op[v]
		xw := op[w]
		if xv != xw {
			row.laneActive++
			if row.probe != nil {
				row.batch.Active++
			}
			var nw O
			var ds int64
			if xv < xw {
				nw, ds = xv+1, 1
			} else {
				nw, ds = xv-1, -1
			}
			op[v] = nw
			i := int32(nw) - bias
			j := int32(xv) - bias
			s.counts[i]++
			s.counts[j]--
			s.degMass[i] += dv
			s.degMass[j] -= dv
			row.laneSum += ds
			row.laneDegSum += ds * dv
			if s.counts[i] == 1 || s.counts[j] == 0 {
				b.laneCommit(row)
				syncCSRSupport(s)
				s.supVer++
				if b.afterSupport(row) {
					b.laneRetire(row)
					live[li] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
			}
		} else if row.probe != nil {
			row.batch.Idle++
		}
		row.laneRemaining--
		if row.laneRemaining == 0 {
			b.laneRetire(row)
			live[li] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		li++
	}
	b.laneSink += int64(touch)
	return live
}

// laneLoopTopoEdge is laneLoopEdge generalized the same way.
func laneLoopTopoEdge[O opcell](b *blockRun, live []*blockRow) []*blockRow {
	var touch O
	for li := 0; len(live) > 0; {
		if li >= len(live) {
			li = 0
		}
		row := live[li]
		s := row.s
		op := slabOf[O](s)
		bias := biasOf[O](s)
		if !row.haveNext {
			drawLaneTopoEdge(b, row)
			row.haveNext = true
		}
		v, w, dv := row.nextV, row.nextW, row.nextDeg
		drawLaneTopoEdge(b, row)
		touch += op[row.nextV] ^ op[row.nextW]
		row.laneDrawn++
		row.lanePending++
		xv := op[v]
		xw := op[w]
		if xv != xw {
			row.laneActive++
			if row.probe != nil {
				row.batch.Active++
			}
			var nw O
			var ds int64
			if xv < xw {
				nw, ds = xv+1, 1
			} else {
				nw, ds = xv-1, -1
			}
			op[v] = nw
			i := int32(nw) - bias
			j := int32(xv) - bias
			s.counts[i]++
			s.counts[j]--
			s.degMass[i] += dv
			s.degMass[j] -= dv
			row.laneSum += ds
			row.laneDegSum += ds * dv
			if s.counts[i] == 1 || s.counts[j] == 0 {
				b.laneCommit(row)
				syncCSRSupport(s)
				s.supVer++
				if b.afterSupport(row) {
					b.laneRetire(row)
					live[li] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
			}
		} else if row.probe != nil {
			row.batch.Idle++
		}
		row.laneRemaining--
		if row.laneRemaining == 0 {
			b.laneRetire(row)
			live[li] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		li++
	}
	b.laneSink += int64(touch)
	return live
}

package core

import (
	"fmt"
	"strings"
)

// Engine selects the stepping strategy used by Run. Every engine
// realizes the same process law — the joint distribution of the opinion
// trajectory, the step counter, the stopping times, and the observer
// call sites is identical — they differ only in how much work a step
// costs.
type Engine int

const (
	// EngineNaive simulates every scheduler invocation individually,
	// including the no-op steps where the scheduled pair already agrees.
	// It is the reference implementation and the default.
	EngineNaive Engine = iota
	// EngineFast tracks the discordant (disagreeing) pairs incrementally
	// and advances the step counter past runs of idle steps in one
	// geometric draw; see fast.go for the construction and DESIGN.md §6
	// for why the law is preserved exactly. It requires the rule to be a
	// PairwiseRule.
	EngineFast
	// EngineAuto adapts at runtime: it steps naively while discordance
	// is high and switches to the fast engine's skip-sampling when a
	// windowed idle-fraction estimate says the O(d(v))
	// per-active-step bookkeeping will pay for itself (hybrid.go). Runs
	// whose rule is not a PairwiseRule stay naive throughout.
	EngineAuto
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineNaive:
		return "naive"
	case EngineFast:
		return "fast"
	case EngineAuto:
		return "auto"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine parses an engine name: "naive", "fast", or "auto"
// (case-insensitive).
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "naive":
		return EngineNaive, nil
	case "fast":
		return EngineFast, nil
	case "auto":
		return EngineAuto, nil
	default:
		return EngineNaive, fmt.Errorf("core: unknown engine %q (want naive, fast, or auto)", s)
	}
}

// stepMode is the concrete stepping strategy engineFor resolved
// cfg.Engine to.
type stepMode int

const (
	stepNaive stepMode = iota
	stepFast
	stepHybrid
)

// engineFor resolves cfg.Engine to a concrete stepper. stepFast comes
// with a ready *FastState; stepHybrid builds (and drops) FastStates
// lazily as discordance falls and rebounds. EngineFast errors when the
// run is ineligible; EngineAuto silently stays naive.
func engineFor(cfg Config, s *State, rule Rule) (stepMode, *FastState, error) {
	switch cfg.Engine {
	case EngineNaive:
		return stepNaive, nil, nil
	case EngineFast:
		if _, ok := rule.(PairwiseRule); !ok {
			return 0, nil, fmt.Errorf("core: fast engine requires a PairwiseRule, got %q", rule.Name())
		}
		fs, err := newFastStateFor(cfg.Scratch, s, cfg.Process)
		return stepFast, fs, err
	case EngineAuto:
		if _, ok := rule.(PairwiseRule); !ok {
			return stepNaive, nil, nil
		}
		return stepHybrid, nil, nil
	default:
		return 0, nil, fmt.Errorf("core: unknown engine %d", int(cfg.Engine))
	}
}

//go:build divtestinvariants

package core

// With the divtestinvariants build tag, every FastState opinion update
// re-derives the discordance bookkeeping from scratch and panics on the
// first divergence from the incremental aggregates. O(n + m) per update
// — run `go test -tags divtestinvariants ./internal/core` (the Makefile
// `invariants` target) to exercise it; never enable it for benchmarks.
func fastCheckInvariants(f *FastState) {
	if err := f.CheckDiscordance(); err != nil {
		panic(err)
	}
	if err := f.s.CheckInvariants(); err != nil {
		panic(err)
	}
}

// sparseCheckInvariants re-derives the sparse engine's discordant-
// vertex set from scratch after every opinion update and panics on the
// first divergence (membership, counts, position index, mass
// aggregates). O(n·d) per update — divtestinvariants builds only.
func sparseCheckInvariants(sp *SparseState) {
	if err := sp.CheckSparse(); err != nil {
		panic(err)
	}
	if err := sp.s.CheckInvariants(); err != nil {
		panic(err)
	}
}

// invariantChecksEnabled reports whether this build re-derives the
// discordance bookkeeping after every update (divtestinvariants). The
// allocation-regression tests skip themselves under it: the O(n + m)
// checking pass allocates by design.
const invariantChecksEnabled = true

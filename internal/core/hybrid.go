package core

import "div/internal/obs"

// The hybrid engine behind EngineAuto: run the naive per-invocation
// loop while discordance is high (where it is unbeatable — an idle draw
// costs a couple of array reads) and switch to the skip-sampling fast
// loop when idle draws dominate. The two regimes are real: a k-opinion
// run starts with most draws discordant, where the fast engine's O(d(v))
// bookkeeping per active step is pure overhead, and ends in the long
// two-adjacent-opinion final stage where almost every draw is idle and
// skip-sampling wins by orders of magnitude.
//
// Switching preserves the process law exactly. Each engine realizes the
// correct conditional trajectory law *from any state*, and the decision
// to switch is measurable with respect to the past (the naive→fast
// trigger looks at realized draws, the fast→naive trigger at the
// current state's exact discordance mass), i.e. it is a stopping time —
// so the concatenated trajectory has the same joint distribution as
// either pure engine, stopping times and observer call sites included.
//
// Cost model. A naive draw costs ~1 unit; one fast active iteration
// costs ~hybridCostRatio·(d̄/3 + 4) units (O(d̄) arc toggles plus the
// constant geometric-skip and sampling overhead; measured on a
// 10k-vertex 16-regular graph a naive draw is ~25ns and a fast active
// iteration ~200–280ns ≈ 9 draws ≈ d̄/3 + 4). Skip-sampling therefore
// pays when the expected draws per active step, 1/p, exceed that:
//
//	enter fast: windowed active fraction < 1 / (2·R·(d̄/3 + 4))
//	exit fast:  exact p_active        > 1 / (R·(d̄/3 + 4))
//
// with R = hybridCostRatio. The factor-2 gap is hysteresis; entry uses
// a cheap per-window counter, exit the exact mass the fast state
// already maintains. Because the minority-size random walk of a final
// stage re-crosses any fixed threshold many times, two further guards
// keep transition costs amortized: the FastState is built once and
// re-entered via an O(arcs) Reset (structural arrays are reused), and
// each fast→naive exit starts an exponentially growing cooldown
// (1, 2, 4, … windows, capped) before the next entry is considered.
// On dense graphs (K_n: d̄ ≈ n) the thresholds become correspondingly
// extreme, which is exactly right: there the fast engine only wins when
// discordance is truly microscopic.

var (
	// hybridWindow is the number of naive draws per idle-fraction
	// sample. A package-level var so tests can shrink it to exercise
	// switching on small graphs.
	hybridWindow = int64(4096)
	// hybridCostRatio scales the modelled cost of one fast active
	// iteration, in units of naive draws, relative to the baseline
	// d̄/3 + 4 (see hybridCostUnits). 1 matches measurement on random
	// regular graphs; raising it makes Auto more reluctant to leave
	// naive stepping.
	hybridCostRatio = int64(1)
	// hybridMaxCooldown caps the exponential re-entry backoff, in
	// windows, so a long run can still return to fast mode reasonably
	// promptly after a burst of discordance.
	hybridMaxCooldown = int64(256)
)

// hybridCostUnits returns d̄/3 + 4: the modelled cost of one fast-engine
// active iteration in units of naive draws (O(d̄) arc toggles dominate
// for dense graphs, constant skip/sample overhead for sparse ones).
func hybridCostUnits(g interface {
	N() int
	DegreeSum() int64
}) int64 {
	n := int64(g.N())
	if n < 1 {
		return 2
	}
	u := g.DegreeSum()/n/3 + 4
	if u < 2 {
		u = 2
	}
	return u
}

// hybridLoop alternates between the naive and fast loop bodies under
// the switching policy above. rule is the run's rule, already checked
// to be a PairwiseRule; proc is needed to build the FastState on the
// first naive→fast transition (later transitions Reset it in place).
func (e *loopEnv) hybridLoop(rule PairwiseRule, proc Process) {
	s := e.s
	costUnits := hybridCostRatio * hybridCostUnits(s.Graph())
	enterScale := 2 * costUnits // active·enterScale < window ⇒ enter
	exitScale := costUnits      // num·exitScale > den ⇒ exit
	fastDisabled := e.observer != nil && e.observeEvery < 8

	var f *FastState
	inFast := false
	var cooldown int64       // windows left before entry may be considered
	nextCooldown := int64(1) // doubles on every fast→naive exit
	prevVersion := s.SupportVersion()
	var windowDraws, windowActive int64

	// Initial probe: a run that *starts* deep in the idle-dominated
	// regime (a final-stage or near-consensus state) should not pay a
	// full naive window before the first switching decision. Estimate
	// the active fraction from a few hundred uniform arcs — a function
	// of the current state and independent coin flips, so entering here
	// is as lawful a stopping time as the windowed trigger — and build
	// the fast index straight away when it is clearly below threshold.
	if !fastDisabled {
		if arcs := s.Graph().DegreeSum(); arcs > 0 {
			const probes = 512
			active := int64(0)
			for i := 0; i < probes; i++ {
				v, w := s.Graph().EdgeAt(int(e.r.Int64N(arcs)))
				if s.opinions[v] != s.opinions[w] {
					active++
				}
			}
			if active*enterScale < probes {
				if fs, err := e.newFast(s, proc); err != nil {
					fastDisabled = true
				} else if f = fs; f.num*exitScale <= f.den {
					inFast = true
					f.attachDiscordance()
					if e.probe != nil {
						e.probe.EngineSwitch(obs.EngineSwitch{
							Step:    s.Steps(),
							From:    obs.RegimeNaive,
							To:      obs.RegimeFast,
							Reason:  obs.SwitchProbe,
							MassNum: f.num,
							MassDen: f.den,
						})
					}
				}
			}
		}
	}
	// As in naiveLoop, the stop condition is only re-evaluated when the
	// support set changed (it is a predicate on the support set, which
	// only moves on simulated active steps), and the default DIV rule is
	// dispatched statically.
	doneNow := e.done()
	_, isDIV := rule.(DIV)
	for !e.res.Aborted && !doneNow && s.Steps() < e.maxSteps {
		if !inFast {
			// Naive mode: one scheduler invocation, plus window accounting.
			v, w := e.sched.Pair(e.r)
			s.countStep()
			active := s.opinions[v] != s.opinions[w]
			if e.probe != nil {
				if active {
					e.batch.Active++
				} else {
					e.batch.Idle++
				}
				if s.Steps() >= e.nextEmit {
					e.flushBatch(obs.RegimeNaive)
					e.advanceEmit()
				}
			}
			if isDIV {
				DIV{}.Step(s, e.r, v, w)
			} else {
				e.rule.Step(s, e.r, v, w)
			}
			if s.SupportVersion() != prevVersion {
				e.onSupport()
				prevVersion = s.SupportVersion()
				doneNow = e.done()
			}
			if e.observer != nil && s.Steps()%e.observeEvery == 0 {
				if !e.observer(s) {
					e.res.Aborted = true
				}
			}
			if active {
				windowActive++
			}
			if windowDraws++; windowDraws >= hybridWindow {
				switch {
				case cooldown > 0:
					cooldown--
				case !fastDisabled && windowActive*enterScale < windowDraws:
					if f == nil {
						fs, err := e.newFast(s, proc)
						if err != nil {
							// e.g. degree-lcm overflow: naive-only from here on.
							fastDisabled = true
						} else {
							f = fs
						}
					} else {
						f.Reset()
					}
					// The windowed estimate is noisy; trust the exact mass.
					// If it is already past the exit threshold, entering
					// would bounce straight back — back off instead.
					if f != nil && f.num*exitScale > f.den {
						cooldown = nextCooldown
						if nextCooldown < hybridMaxCooldown {
							nextCooldown *= 2
						}
					} else if f != nil {
						inFast = true
						f.attachDiscordance()
						if e.probe != nil {
							e.flushBatch(obs.RegimeNaive)
							e.probe.EngineSwitch(obs.EngineSwitch{
								Step:         s.Steps(),
								From:         obs.RegimeNaive,
								To:           obs.RegimeFast,
								Reason:       obs.SwitchWindow,
								WindowDraws:  windowDraws,
								WindowActive: windowActive,
								MassNum:      f.num,
								MassDen:      f.den,
							})
						}
					}
				}
				windowDraws, windowActive = 0, 0
			}
			continue
		}
		// Fast mode: one skip-sampling iteration (mirrors FastState.loop).
		limit := e.maxSteps - s.Steps()
		if e.observer != nil {
			if toBoundary := e.observeEvery - s.Steps()%e.observeEvery; toBoundary < limit {
				limit = toBoundary
			}
		}
		num, den := f.ActiveMass()
		k := limit
		if num > 0 {
			k = geomSkip(e.r, num, den, limit)
		}
		if k < limit {
			s.addSteps(k + 1)
			if e.probe != nil {
				e.batch.Skipped += k
				e.batch.Active++
			}
			v, w := f.sampleDiscordant(e.r)
			f.SetOpinion(v, rule.Target(int(s.opinions[v]), int(s.opinions[w])))
			if s.SupportVersion() != prevVersion {
				e.onSupport()
				prevVersion = s.SupportVersion()
				doneNow = e.done()
			}
			if num, den := f.ActiveMass(); num*exitScale > den {
				// Discordance rebounded: back to naive stepping, with an
				// exponentially growing cooldown before the next entry.
				inFast = false
				f.detachDiscordance()
				cooldown = nextCooldown
				if nextCooldown < hybridMaxCooldown {
					nextCooldown *= 2
				}
				if e.probe != nil {
					e.flushBatch(obs.RegimeFast)
					e.probe.EngineSwitch(obs.EngineSwitch{
						Step:     s.Steps(),
						From:     obs.RegimeFast,
						To:       obs.RegimeNaive,
						Reason:   obs.SwitchRebound,
						MassNum:  num,
						MassDen:  den,
						Cooldown: cooldown,
					})
				}
			}
		} else {
			s.addSteps(limit)
			if e.probe != nil {
				e.batch.Skipped += limit
			}
		}
		if e.probe != nil && inFast && s.Steps() >= e.nextEmit {
			e.emitFastCadence(f)
		}
		if e.observer != nil && s.Steps()%e.observeEvery == 0 {
			if !e.observer(s) {
				e.res.Aborted = true
			}
		}
	}
	if inFast {
		e.flushBatch(obs.RegimeFast)
	} else {
		e.flushBatch(obs.RegimeNaive)
	}
	if f != nil {
		f.flushSamplerMetrics()
	}
}

package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"div/internal/graph"
	"div/internal/obs"
	"div/internal/stats"
)

// This file pins the sparse endgame engine's contract (sparse.go):
//
//  1. Law: hand-off trajectories (EngineAuto) and all-sparse
//     trajectories (EngineFast) realize the same winner and
//     stopping-time distributions as EngineNaive across the implicit
//     families and both processes, under the α = 0.001 χ²/KS standard.
//     Unlike the blocked-backend identity tests, the bar here is
//     distribution-equivalence: skip-sampling consumes the stream
//     differently by construction.
//  2. Exact conditional sampling: sampleDiscordant realizes the
//     process's active-pair law (∝ 1/d(v) per discordant arc for the
//     vertex process, uniform over discordant arcs for the edge
//     process) on an irregular-degree topology.
//  3. Swap-delete set invariants: membership == actual discordance and
//     all aggregates stay consistent after every local update, checked
//     deterministically and under fuzzing.

// sparseTopoCases are the implicit families the equivalence arm sweeps:
// regular and irregular (torus corners are regular but cycle/circulant
// differ in degree; hashedregular is the multigraph case).
func sparseTopoCases(t testing.TB) []topoCase {
	t.Helper()
	mk := func(name string, topo graph.Topology, err error) topoCase {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return topoCase{name: name, topo: topo}
	}
	cycle, errCy := graph.NewImplicitCycle(48)
	torus, errT := graph.NewImplicitTorus(6, 8)
	circ, errR := graph.NewImplicitCirculant(48, []int{1, 2, 3})
	hashed, errH := graph.NewHashedRegular(64, 4, 0x5a5a)
	return []topoCase{
		mk("cycle", cycle, errCy),
		mk("torus", torus, errT),
		mk("circulant", circ, errR),
		mk("hashedregular", hashed, errH),
	}
}

// gatherTopoBlockEngine is gatherTopoBlock with the engine as a
// parameter, for arms that retire to the sparse engine.
func gatherTopoBlockEngine(t *testing.T, topo graph.Topology, compact bool, proc Process, engine Engine, baseSeed uint64, trials int) eqSample {
	t.Helper()
	out := runTopoBlock(t, topo, compact, proc, engine, 3, baseSeed, trials, 0)
	sm := eqSample{
		winners: make([]int, trials),
		steps:   make([]float64, trials),
		twoAdj:  make([]float64, trials),
	}
	for i, r := range out {
		if !r.Consensus {
			t.Fatalf("trial %d did not reach consensus", i)
		}
		sm.winners[i] = r.Winner
		sm.steps[i] = float64(r.Steps)
		sm.twoAdj[i] = float64(r.TwoAdjacentStep)
	}
	return sm
}

// TestSparseDistributionEquivalence is the acceptance arm for the
// sparse engine's law: on every implicit family × process, EngineAuto
// (blocked stepping with a sparse endgame hand-off) and EngineFast
// (all-sparse from step 0, the harshest test — the set starts dense)
// must match EngineNaive's winner χ² and stopping-time KS statistics
// under independent seeds. hybridWindow is shrunk so Auto actually
// hands off at these sizes.
func TestSparseDistributionEquivalence(t *testing.T) {
	trials := eqTrials(t)
	oldWindow, oldRatio := hybridWindow, hybridCostRatio
	hybridWindow, hybridCostRatio = 64, 1
	defer func() { hybridWindow, hybridCostRatio = oldWindow, oldRatio }()
	for _, tc := range sparseTopoCases(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			t.Run(fmt.Sprintf("%s/%v", tc.name, proc), func(t *testing.T) {
				naive := gatherTopoBlockEngine(t, tc.topo, true, proc, EngineNaive, 0xa11ce, trials)
				for _, arm := range []struct {
					label  string
					engine Engine
					seed   uint64
				}{
					{"auto", EngineAuto, 0xb0b57}, {"fast", EngineFast, 0xcafe},
				} {
					sparse := gatherTopoBlockEngine(t, tc.topo, true, proc, arm.engine, arm.seed, trials)
					if stat, df := chi2TwoSample(naive.winners, sparse.winners); df > 0 && stat > chi2Crit001[df] {
						t.Errorf("%s winner χ²(%d) = %.2f > %.2f (α=0.001): sparse disagrees with naive", arm.label, df, stat, chi2Crit001[df])
					}
					ksCrit := ks2Crit001 * math.Sqrt(float64(2*trials)/float64(trials*trials))
					for _, series := range []struct {
						label  string
						na, sp []float64
					}{
						{"consensus steps", naive.steps, sparse.steps},
						{"two-adjacent step", naive.twoAdj, sparse.twoAdj},
					} {
						d, err := stats.KS2Sample(series.na, series.sp)
						if err != nil {
							t.Fatal(err)
						}
						if d > ksCrit {
							t.Errorf("%s/%s KS distance %.4f > %.4f (α=0.001): sparse disagrees with naive", arm.label, series.label, d, ksCrit)
						}
					}
				}
			})
		}
	}
}

// sparseFixture builds a State over topo (int32 representation) with
// the given opinions and a seeded SparseState on it.
func sparseFixture(t testing.TB, topo graph.Topology, proc Process, opinions []int) (*State, *SparseState) {
	t.Helper()
	s := &State{topo: topo}
	if err := s.ResetTo(opinions); err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparseState(s, proc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.CheckSparse(); err != nil {
		t.Fatalf("fresh seed: %v", err)
	}
	return s, sp
}

// TestSparseStateBasic pins the set's bookkeeping on a hand-checkable
// state: seeding, O(1) discordance, exact mass, the attach hook, and
// repair through a sequence of updates ending in concordance.
// TestSparseProbeDoesNotPerturb pins the probe-neutrality contract on
// the blocked sparse path: RunBlock results on implicit and compact
// backends under EngineFast and EngineAuto must be trial-for-trial
// identical with and without a probe attached. The geometric skips in
// retireSparse must be bounded by MaxSteps only — clamping them to the
// probe-emit cadence segments the draws differently and consumes
// randomness on the probe's behalf, which obs.Probe's contract forbids
// (and which this test caught once).
func TestSparseProbeDoesNotPerturb(t *testing.T) {
	circ, err := graph.NewImplicitCirculant(96, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EngineFast, EngineAuto} {
		for _, compact := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/compact=%v", engine, compact), func(t *testing.T) {
				run := func(probe obs.ProbeMaker) []Result {
					out := make([]Result, 4)
					err := RunBlock(BlockConfig{
						Topology: circ,
						Compact:  compact,
						Process:  VertexProcess,
						Engine:   engine,
						Seed:     0x9b0e,
						Init: func(trial int, dst []int, r *rand.Rand) error {
							UniformOpinionsInto(dst, 3, r)
							return nil
						},
						MaxSteps: 4 << 20,
						Probe:    probe,
					}, 0, len(out), out)
					if err != nil {
						t.Fatal(err)
					}
					return out
				}
				bare := run(nil)
				probed := run(func(int, uint64) obs.Probe { return &collectingProbe{} })
				for i := range bare {
					b, p := bare[i], probed[i]
					if b.Steps != p.Steps || b.Winner != p.Winner || b.Consensus != p.Consensus ||
						b.ThreeStep != p.ThreeStep || b.TwoAdjacentStep != p.TwoAdjacentStep ||
						b.MajorityStep != p.MajorityStep || b.FinalMin != p.FinalMin || b.FinalMax != p.FinalMax {
						t.Fatalf("trial %d: probe perturbed the blocked sparse run:\nnil:    %+v\nprobed: %+v", i, b, p)
					}
				}
			})
		}
	}
}

func TestSparseStateBasic(t *testing.T) {
	topo, err := graph.NewImplicitCycle(8)
	if err != nil {
		t.Fatal(err)
	}
	// One dissenter at vertex 3: diff(2)=diff(4)=1, diff(3)=2.
	op := []int{0, 0, 0, 1, 0, 0, 0, 0}
	for _, proc := range []Process{VertexProcess, EdgeProcess} {
		s, sp := sparseFixture(t, topo, proc, op)
		if got := sp.Members(); got != 3 {
			t.Fatalf("%v: %d members, want 3", proc, got)
		}
		if got := sp.DiscordantEdges(); got != 2 {
			t.Fatalf("%v: %d discordant edges, want 2", proc, got)
		}
		if got, want := s.DiscordantEdges(), int64(2); got != want {
			t.Fatalf("%v: State.DiscordantEdges %d, want %d", proc, got, want)
		}
		num, den := sp.ActiveMass()
		// Cycle: d(v)=2 everywhere, so lcm=2 and both processes see
		// p = 4 discordant arcs / 16 (edge: 4/16; vertex: 4·1/(8·2)).
		if float64(num)/float64(den) != 0.25 {
			t.Fatalf("%v: active mass %d/%d, want 1/4", proc, num, den)
		}
		sp.attachDiscordance()
		if got := s.DiscordantEdges(); got != 2 {
			t.Fatalf("%v: attached DiscordantEdges %d, want 2", proc, got)
		}
		// Resolve the dissent; the set must drain to empty.
		sp.SetOpinion(3, 0)
		if err := sp.CheckSparse(); err != nil {
			t.Fatalf("%v after update: %v", proc, err)
		}
		if sp.Members() != 0 || sp.DiscordantEdges() != 0 {
			t.Fatalf("%v: set not drained: %d members, %d edges", proc, sp.Members(), sp.DiscordantEdges())
		}
		if num, _ := sp.ActiveMass(); num != 0 {
			t.Fatalf("%v: residual mass %d", proc, num)
		}
		sp.detachDiscordance()
	}
}

// TestSparseSampleLaw draws from sampleDiscordant with the state held
// fixed on an irregular topology (a path: end degrees 1, interior 2)
// and χ²-tests the empirical ordered-pair frequencies against the exact
// conditional law of each process.
func TestSparseSampleLaw(t *testing.T) {
	topo, err := graph.NewImplicitPath(5)
	if err != nil {
		t.Fatal(err)
	}
	// Opinions 0,1,0,0,1: discordant arcs (0,1),(1,0),(1,2),(2,1),(3,4),(4,3).
	op := []int{0, 1, 0, 0, 1}
	const draws = 60000
	for _, proc := range []Process{VertexProcess, EdgeProcess} {
		_, sp := sparseFixture(t, topo, proc, op)
		// Exact law over ordered discordant arcs (v, w).
		want := map[[2]int]float64{}
		var norm float64
		for v := 0; v < topo.N(); v++ {
			xv := op[v]
			for i := 0; i < topo.Degree(v); i++ {
				w := topo.Neighbor(v, i)
				if op[w] == xv {
					continue
				}
				p := 1.0
				if proc == VertexProcess {
					p = 1 / float64(topo.Degree(v))
				}
				want[[2]int{v, w}] += p
				norm += p
			}
		}
		r := rand.New(rand.NewPCG(7, uint64(proc)))
		got := map[[2]int]int{}
		for i := 0; i < draws; i++ {
			v, w := sp.sampleDiscordant(r)
			if op[v] == op[w] {
				t.Fatalf("%v: sampled concordant pair (%d,%d)", proc, v, w)
			}
			got[[2]int{v, w}]++
		}
		var stat float64
		for pair, p := range want {
			exp := p / norm * draws
			d := float64(got[pair]) - exp
			stat += d * d / exp
		}
		df := len(want) - 1
		crit := map[int]float64{5: 20.515}[df]
		if crit == 0 {
			t.Fatalf("unexpected df %d", df)
		}
		if stat > crit {
			t.Errorf("%v: sample law χ²(%d) = %.2f > %.2f (α=0.001)", proc, df, stat, crit)
		}
	}
}

// TestSparseRebind pins the arena-sharing contract: rebinding the set
// to a different State over the same topology and reseeding must yield
// a consistent set, and rebinding across topologies must panic.
func TestSparseRebind(t *testing.T) {
	topo, err := graph.NewImplicitTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	op1 := make([]int, topo.N())
	op2 := make([]int, topo.N())
	for i := range op2 {
		op2[i] = i % 3
	}
	_, sp := sparseFixture(t, topo, VertexProcess, op1)
	if sp.Members() != 0 {
		t.Fatalf("concordant state seeded %d members", sp.Members())
	}
	s2 := &State{topo: topo}
	if err := s2.ResetTo(op2); err != nil {
		t.Fatal(err)
	}
	sp.rebind(s2)
	sp.Seed()
	if err := sp.CheckSparse(); err != nil {
		t.Fatalf("after rebind+seed: %v", err)
	}
	if sp.Members() != topo.N() {
		t.Fatalf("mod-3 profile: %d members, want all %d", sp.Members(), topo.N())
	}
	other, err := graph.NewImplicitCycle(16)
	if err != nil {
		t.Fatal(err)
	}
	s3 := &State{topo: other}
	if err := s3.ResetTo(make([]int, 16)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("rebind across topologies did not panic")
		}
	}()
	sp.rebind(s3)
}

// TestSparseMajorityStep pins the MajorityFrac milestone: a run born
// with a 90% majority records step 0; an even 3-way split records a
// positive step no later than consensus; MajorityFrac 0 leaves -1.
func TestSparseMajorityStep(t *testing.T) {
	topo, err := graph.NewImplicitCirculant(120, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	n := topo.N()
	run := func(frac float64, init func(dst []int)) Result {
		out := make([]Result, 1)
		err := RunBlock(BlockConfig{
			Topology:     topo,
			Engine:       EngineAuto,
			Seed:         0x9a11,
			MajorityFrac: frac,
			Init: func(trial int, dst []int, r *rand.Rand) error {
				init(dst)
				return nil
			},
		}, 0, 1, out)
		if err != nil {
			t.Fatal(err)
		}
		return out[0]
	}
	dissent := func(dst []int) {
		for i := range dst {
			dst[i] = 0
		}
		dst[n/2] = 1
	}
	split := func(dst []int) {
		for i := range dst {
			dst[i] = i % 3
		}
	}
	if r := run(0.9, dissent); r.MajorityStep != 0 {
		t.Errorf("dissenter profile: MajorityStep %d, want 0", r.MajorityStep)
	}
	if r := run(0.9, split); r.MajorityStep <= 0 || r.MajorityStep > r.Steps {
		t.Errorf("split profile: MajorityStep %d outside (0, %d]", r.MajorityStep, r.Steps)
	}
	if r := run(0, split); r.MajorityStep != -1 {
		t.Errorf("untracked run: MajorityStep %d, want -1", r.MajorityStep)
	}
}

// FuzzSparseSet fuzzes the swap-delete set's local-update invariants:
// from a fuzz-chosen topology, initial profile, and update sequence,
// membership must equal actual discordance and every aggregate must
// match a from-scratch re-derivation after each step, with draws from
// the set always discordant.
func FuzzSparseSet(f *testing.F) {
	f.Add(uint8(0), uint8(16), uint8(2), uint64(1), uint16(40))
	f.Add(uint8(1), uint8(9), uint8(3), uint64(2), uint16(60))
	f.Add(uint8(2), uint8(20), uint8(4), uint64(3), uint16(25))
	f.Add(uint8(3), uint8(32), uint8(2), uint64(4), uint16(80))
	f.Fuzz(func(t *testing.T, fam, size, kRaw uint8, seed uint64, opsRaw uint16) {
		var topo graph.Topology
		var err error
		switch fam % 4 {
		case 0:
			topo, err = graph.NewImplicitCycle(3 + int(size)%30)
		case 1:
			topo, err = graph.NewImplicitTorus(3+int(size)%5, 3+int(size)%7)
		case 2:
			topo, err = graph.NewImplicitCirculant(7+int(size)%40, []int{1, 2, 3})
		default:
			topo, err = graph.NewHashedRegular(8+2*(int(size)%28), 3+int(size)%4, seed|1)
		}
		if err != nil {
			t.Skip()
		}
		n := topo.N()
		k := 2 + int(kRaw)%5
		r := rand.New(rand.NewPCG(seed, 0x5fa12))
		op := make([]int, n)
		for i := range op {
			op[i] = r.IntN(k)
		}
		proc := VertexProcess
		if seed&1 == 1 {
			proc = EdgeProcess
		}
		s, sp := sparseFixture(t, topo, proc, op)
		sp.attachDiscordance()
		ops := int(opsRaw) % 200
		for i := 0; i < ops; i++ {
			if sp.Members() > 0 && r.IntN(3) == 0 {
				// A process step: sample an active pair, apply DIV.
				v, w := sp.sampleDiscordant(r)
				if s.Opinion(v) == s.Opinion(w) {
					t.Fatalf("op %d: sampled concordant pair (%d,%d)", i, v, w)
				}
				sp.SetOpinion(v, DIV{}.Target(s.Opinion(v), s.Opinion(w)))
			} else {
				// An adversarial update: arbitrary vertex, arbitrary
				// in-window value (exercises ±more-than-1 diff changes).
				sp.SetOpinion(r.IntN(n), s.Min()+r.IntN(s.Max()-s.Min()+1))
			}
			if err := sp.CheckSparse(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if got, want := s.DiscordantEdges(), sp.sumDiff/2; got != want {
				t.Fatalf("op %d: hooked DiscordantEdges %d, want %d", i, got, want)
			}
		}
	})
}

package core

import (
	"math"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
)

func TestProcessString(t *testing.T) {
	if VertexProcess.String() != "vertex" || EdgeProcess.String() != "edge" {
		t.Error("Process.String mismatch")
	}
	if Process(9).String() != "Process(9)" {
		t.Error("unknown process string")
	}
}

func TestSchedulerRequiresMinDegree(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})
	s := MustState(g, []int{1, 2, 3})
	if _, err := NewScheduler(s, VertexProcess); err == nil {
		t.Error("isolated vertex accepted")
	}
}

// TestVertexProcessPairDistribution verifies the paper's equation (2):
// P[v chooses w] = 1/(n·d(v)).
func TestVertexProcessPairDistribution(t *testing.T) {
	g := graph.Star(4) // centre 0 deg 3; leaves deg 1
	s := MustState(g, []int{1, 1, 1, 1})
	sched, err := NewScheduler(s, VertexProcess)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	const trials = 300000
	counts := map[[2]int]int{}
	for i := 0; i < trials; i++ {
		v, w := sched.Pair(r)
		if !g.HasEdge(v, w) {
			t.Fatalf("pair (%d,%d) not an edge", v, w)
		}
		counts[[2]int{v, w}]++
	}
	n := 4.0
	for pair, c := range counts {
		want := 1 / (n * float64(g.Degree(pair[0])))
		z := (float64(c) - want*trials) / math.Sqrt(trials*want*(1-want))
		if math.Abs(z) > 5 {
			t.Errorf("pair %v: count %d, want %.0f (z=%.1f)", pair, c, want*trials, z)
		}
	}
	// Every directed pair should appear.
	if len(counts) != int(g.DegreeSum()) {
		t.Errorf("observed %d directed pairs, want %d", len(counts), g.DegreeSum())
	}
}

// TestEdgeProcessPairDistribution verifies P[v chooses w] = 1/2m.
func TestEdgeProcessPairDistribution(t *testing.T) {
	g := graph.Star(4)
	s := MustState(g, []int{1, 1, 1, 1})
	sched, err := NewScheduler(s, EdgeProcess)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(32)
	const trials = 300000
	counts := map[[2]int]int{}
	for i := 0; i < trials; i++ {
		v, w := sched.Pair(r)
		if !g.HasEdge(v, w) {
			t.Fatalf("pair (%d,%d) not an edge", v, w)
		}
		counts[[2]int{v, w}]++
	}
	want := 1 / float64(g.DegreeSum())
	for pair, c := range counts {
		z := (float64(c) - want*trials) / math.Sqrt(trials*want*(1-want))
		if math.Abs(z) > 5 {
			t.Errorf("pair %v: count %d, want %.0f (z=%.1f)", pair, c, want*trials, z)
		}
	}
}

func TestSchedulerWeights(t *testing.T) {
	g := graph.Star(4)
	s := MustState(g, []int{2, 1, 3, 3})
	vs, err := NewScheduler(s, VertexProcess)
	if err != nil {
		t.Fatal(err)
	}
	es, err := NewScheduler(s, EdgeProcess)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Weight() != s.DegSum() {
		t.Error("vertex process weight != DegSum")
	}
	if es.Weight() != s.Sum() {
		t.Error("edge process weight != Sum")
	}
	if vs.WeightAverage() != s.WeightedAverage() {
		t.Error("vertex process average != weighted average")
	}
	if es.WeightAverage() != s.Average() {
		t.Error("edge process average != simple average")
	}
}

func TestDIVRuleSemantics(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	tests := []struct {
		name    string
		initial []int
		v, w    int
		want    int // expected opinion of v after the step
	}{
		{"increment", []int{1, 5, 3}, 0, 1, 2},
		{"decrement", []int{1, 5, 3}, 1, 0, 4},
		{"equal is no-op", []int{3, 3, 5}, 0, 1, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := MustState(g, tc.initial)
			DIV{}.Step(s, nil, tc.v, tc.w)
			if got := s.Opinion(tc.v); got != tc.want {
				t.Errorf("opinion(%d) = %d, want %d", tc.v, got, tc.want)
			}
			// Only v may change.
			for u := range tc.initial {
				if u != tc.v && s.Opinion(u) != tc.initial[u] {
					t.Errorf("vertex %d changed from %d to %d", u, tc.initial[u], s.Opinion(u))
				}
			}
		})
	}
}

func TestSignedArcSumAlwaysZero(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 50; trial++ {
		n := 5 + r.IntN(40)
		g, err := graph.ConnectedGnp(n, 0.3, r, 200)
		if err != nil {
			t.Fatal(err)
		}
		s := MustState(g, UniformOpinions(n, 1+r.IntN(10), r))
		if got := SignedArcSum(s); got != 0 {
			t.Fatalf("SignedArcSum = %d on %v", got, g)
		}
	}
}

func TestVertexProcessSumDriftNonzeroOnStar(t *testing.T) {
	// Star with the centre holding the max: the centre gets pulled down
	// by every leaf interaction but leaves rise only at rate 1/n each —
	// under the vertex process the plain sum S drifts.
	g := graph.Star(5)
	s := MustState(g, []int{3, 1, 1, 1, 1})
	drift := VertexProcessSumDrift(s)
	// v=0 (deg 4): all 4 neighbours smaller → signed -4, /d(v) = -1.
	// Each leaf: centre larger → +1 each, /1 = +1, four of them.
	// Total (−1 + 4)/5 = 0.6.
	if math.Abs(drift-0.6) > 1e-12 {
		t.Errorf("drift = %v, want 0.6", drift)
	}
	// Degree-weighted drift under the vertex process is exactly 0.
	if got := SignedArcSum(s); got != 0 {
		t.Errorf("SignedArcSum = %d", got)
	}
}

func TestEdgeProcessDegSumDriftNonzeroOnStar(t *testing.T) {
	g := graph.Star(5)
	s := MustState(g, []int{3, 1, 1, 1, 1})
	drift := EdgeProcessDegSumDrift(s)
	// Arcs from centre: 4 arcs, each sign -1, weight d(0)=4 → -16.
	// Arcs from leaves: 4 arcs, sign +1, weight 1 → +4. Total -12/8.
	if math.Abs(drift-(-1.5)) > 1e-12 {
		t.Errorf("drift = %v, want -1.5", drift)
	}
}

func TestDriftZeroOnRegularGraphs(t *testing.T) {
	// On regular graphs both auxiliary drifts vanish for any opinions.
	r := rng.New(34)
	g := graph.Cycle(20)
	s := MustState(g, UniformOpinions(20, 6, r))
	if d := VertexProcessSumDrift(s); math.Abs(d) > 1e-12 {
		t.Errorf("vertex-process sum drift = %v on cycle", d)
	}
	if d := EdgeProcessDegSumDrift(s); math.Abs(d) > 1e-12 {
		t.Errorf("edge-process degsum drift = %v on cycle", d)
	}
}

package coalesce

import (
	"math"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
	"div/internal/stats"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(graph.MustFromEdges(0, nil)); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := New(graph.MustFromEdges(2, nil)); err == nil {
		t.Error("isolated vertices accepted")
	}
}

func TestSystemInvariants(t *testing.T) {
	g := graph.Complete(20)
	s, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alive() != 20 {
		t.Fatalf("alive = %d at start", s.Alive())
	}
	r := rng.New(1)
	for s.Alive() > 1 {
		before := s.Alive()
		merged := s.Step(r)
		if merged && s.Alive() != before-1 {
			t.Fatal("merge did not decrement alive")
		}
		if !merged && s.Alive() != before {
			t.Fatal("non-merge changed alive")
		}
		// occupant/position consistency.
		count := 0
		for v := 0; v < g.N(); v++ {
			if p := s.occupant[v]; p >= 0 {
				count++
				if s.position[p] != int32(v) {
					t.Fatalf("occupant/position mismatch at %d", v)
				}
			}
		}
		if count != s.Alive() {
			t.Fatalf("occupied vertices %d != alive %d", count, s.Alive())
		}
	}
}

func TestRunToOne(t *testing.T) {
	g := graph.Complete(30)
	s, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := s.RunToOne(1<<30, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Alive() != 1 {
		t.Fatalf("alive = %d after RunToOne", s.Alive())
	}
	if steps <= 0 {
		t.Fatal("no steps consumed")
	}
	// Timeout path.
	s2, _ := New(graph.Cycle(40))
	if _, err := s2.RunToOne(5, rng.New(3)); err == nil {
		t.Error("timeout not reported")
	}
}

func TestMeetingTimeBasics(t *testing.T) {
	g := graph.Complete(10)
	r := rng.New(4)
	if mt, err := MeetingTime(g, 3, 3, 100, r); err != nil || mt != 0 {
		t.Errorf("same-start meeting = %v, %v", mt, err)
	}
	if _, err := MeetingTime(graph.Path(50), 0, 49, 3, r); err == nil {
		t.Error("timeout not reported")
	}
	if _, err := MeetingTime(graph.MustFromEdges(2, nil), 0, 1, 10, r); err == nil {
		t.Error("isolated vertices accepted")
	}
}

func TestMeetingTimeCompleteGraph(t *testing.T) {
	// On K_n, after any move the pair meets w.p. 1/(n-1): meeting time
	// is geometric with mean n-1.
	const n, trials = 25, 4000
	g := graph.Complete(n)
	r := rng.New(5)
	var times []float64
	for i := 0; i < trials; i++ {
		mt, err := MeetingTime(g, 0, 1, 1<<20, r)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, float64(mt))
	}
	s := stats.Summarize(times)
	want := float64(n - 1)
	if math.Abs(s.Mean-want) > 5*s.Stderr()+0.5 {
		t.Errorf("mean meeting time %v ± %v, want %v", s.Mean, s.Stderr(), want)
	}
}

func TestCoalescingTimeScalesLinearlyOnComplete(t *testing.T) {
	// Full coalescence on K_n takes Θ(n) particle activations per
	// remaining pair stage, ≈ 2(n-1)·... — empirically the total is
	// Θ(n²) activations? No: with meeting rate 1/(n-1) per activation
	// and k particles the merge rate scales with k, giving total
	// activations Θ(n log n)... rather than pin a constant, check the
	// growth exponent between n=32 and n=128 stays well below
	// quadratic.
	r := rng.New(6)
	mean := func(n int) float64 {
		var times []float64
		for i := 0; i < 30; i++ {
			s, err := New(graph.Complete(n))
			if err != nil {
				t.Fatal(err)
			}
			steps, err := s.RunToOne(1<<30, r)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, float64(steps))
		}
		return stats.Mean(times)
	}
	m32, m128 := mean(32), mean(128)
	expo := math.Log(m128/m32) / math.Log(4)
	if expo < 0.7 || expo > 1.9 {
		t.Errorf("coalescing time exponent %v (m32=%v m128=%v)", expo, m32, m128)
	}
}

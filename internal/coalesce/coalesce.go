// Package coalesce implements coalescing random walks, the classical
// dual of pull voting: running the voting process backwards in time,
// the "whose opinion am I holding" lineages of the vertices are
// coalescing random walks, so the consensus time of pull voting is
// governed by the coalescing time and the winning-opinion distribution
// by the absorption site. The duality is the engine behind the
// consensus-time literature the paper builds on (e.g. [6], [17]), and
// package exp's E19 experiment checks its quantitative fingerprints on
// our engine.
//
// The model here matches the asynchronous vertex process: discrete
// steps, at each step one uniformly random walker-carrying vertex is
// activated... more precisely, the standard asynchronous coalescing
// system is simulated directly: every vertex starts with a particle; at
// each step a uniformly random particle moves to a uniformly random
// neighbour of its current vertex; particles meeting on a vertex merge.
package coalesce

import (
	"fmt"
	"math/rand/v2"

	"div/internal/graph"
)

// System is a set of coalescing particles on a graph.
type System struct {
	g *graph.Graph
	// at[v] = number of particles currently at v (0 or 1 after
	// coalescence, but transiently counts merge multiplicity).
	position []int32 // position[p] = vertex of particle p, -1 if merged away
	occupant []int32 // occupant[v] = surviving particle at v, -1 if none
	alive    int
	steps    int64
}

// New places one particle on every vertex of g.
func New(g *graph.Graph) (*System, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("coalesce: empty graph")
	}
	if g.MinDegree() == 0 {
		return nil, fmt.Errorf("coalesce: graph has an isolated vertex")
	}
	s := &System{
		g:        g,
		position: make([]int32, g.N()),
		occupant: make([]int32, g.N()),
		alive:    g.N(),
	}
	for v := range s.position {
		s.position[v] = int32(v)
		s.occupant[v] = int32(v)
	}
	return s, nil
}

// Alive returns the number of surviving particles.
func (s *System) Alive() int { return s.alive }

// Steps returns the number of move attempts performed.
func (s *System) Steps() int64 { return s.steps }

// Step activates one uniformly random surviving particle and moves it
// to a uniformly random neighbour, merging on arrival if occupied. It
// reports whether a merge happened.
//
// Activation is implemented by rejection over the particle ids so the
// per-step cost stays O(1) even late in the process.
func (s *System) Step(r *rand.Rand) bool {
	// Rejection-sample a surviving particle.
	var p int32
	for {
		p = int32(r.IntN(len(s.position)))
		if s.position[p] >= 0 {
			break
		}
	}
	s.steps++
	from := s.position[p]
	to := int32(s.g.Neighbor(int(from), r.IntN(s.g.Degree(int(from)))))
	s.occupant[from] = -1
	if q := s.occupant[to]; q >= 0 {
		// Merge p into q.
		s.position[p] = -1
		s.alive--
		return true
	}
	s.position[p] = to
	s.occupant[to] = p
	return false
}

// RunToOne advances the system until a single particle survives and
// returns the number of activations of *surviving* particles consumed
// (the asynchronous coalescing time in particle-activation units) or an
// error after maxSteps.
func (s *System) RunToOne(maxSteps int64, r *rand.Rand) (int64, error) {
	for s.alive > 1 {
		if s.steps >= maxSteps {
			return 0, fmt.Errorf("coalesce: %d particles still alive after %d steps", s.alive, maxSteps)
		}
		s.Step(r)
	}
	return s.steps, nil
}

// MeetingTime runs TWO walkers from the given starts (asynchronous:
// each step one of the two moves, chosen uniformly) until they occupy
// the same vertex, returning the number of steps, or an error after
// maxSteps. The pairwise meeting time lower-bounds the coalescing time
// and is the quantity classical bounds are stated in.
func MeetingTime(g *graph.Graph, a, b int, maxSteps int64, r *rand.Rand) (int64, error) {
	if g.MinDegree() == 0 {
		return 0, fmt.Errorf("coalesce: graph has an isolated vertex")
	}
	if a == b {
		return 0, nil
	}
	pa, pb := a, b
	for t := int64(1); t <= maxSteps; t++ {
		if r.IntN(2) == 0 {
			pa = g.Neighbor(pa, r.IntN(g.Degree(pa)))
		} else {
			pb = g.Neighbor(pb, r.IntN(g.Degree(pb)))
		}
		if pa == pb {
			return t, nil
		}
	}
	return 0, fmt.Errorf("coalesce: walkers from %d and %d did not meet in %d steps", a, b, maxSteps)
}

// StepVertexClock performs one step under the VERTEX clock: a uniform
// vertex is drawn; if it carries a particle, the particle moves (and
// merges on arrival), otherwise nothing happens. Every draw counts as a
// step. This is the exact time-reversal of the asynchronous
// vertex-process pull voting step, so the vertex-clock coalescing time
// equals the pull-voting consensus time (from all-distinct opinions) IN
// DISTRIBUTION — the duality E19 verifies.
func (s *System) StepVertexClock(r *rand.Rand) bool {
	s.steps++
	v := int32(r.IntN(s.g.N()))
	p := s.occupant[v]
	if p < 0 {
		return false
	}
	to := int32(s.g.Neighbor(int(v), r.IntN(s.g.Degree(int(v)))))
	s.occupant[v] = -1
	if q := s.occupant[to]; q >= 0 {
		s.position[p] = -1
		s.alive--
		return true
	}
	s.position[p] = to
	s.occupant[to] = p
	return false
}

// RunToOneVertexClock advances under the vertex clock until one
// particle survives, returning the step count (comparable one-for-one
// with pull-voting process steps), or an error after maxSteps.
func (s *System) RunToOneVertexClock(maxSteps int64, r *rand.Rand) (int64, error) {
	for s.alive > 1 {
		if s.steps >= maxSteps {
			return 0, fmt.Errorf("coalesce: %d particles still alive after %d vertex-clock steps", s.alive, maxSteps)
		}
		s.StepVertexClock(r)
	}
	return s.steps, nil
}

// Survivor returns the id (= origin vertex) of the unique surviving
// particle; ok is false while more than one survives.
func (s *System) Survivor() (origin int, ok bool) {
	if s.alive != 1 {
		return 0, false
	}
	for p, pos := range s.position {
		if pos >= 0 {
			return p, true
		}
	}
	return 0, false
}
